(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, the §4 design-space observations, two ablations,
   and wall-clock throughput benches (one bechamel Test per table).

   Run with: dune exec bench/main.exe *)

open Hwpat_core
open Hwpat_video

let banner title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n== %s\n%s\n" bar title bar

(* ---------------------------------------------------------------- *)
(* Table 1 and Table 2: the component library's capability matrices,
   regenerated from the metamodels.                                   *)
(* ---------------------------------------------------------------- *)

let table1 () =
  banner "Table 1 — common containers (regenerated from the metamodel)";
  print_endline Hwpat_meta.Metamodel.table1

let table2 () =
  banner "Table 2 — iterator operations (regenerated from the metamodel)";
  print_endline Hwpat_meta.Metamodel.table2

(* ---------------------------------------------------------------- *)
(* Figure 2: the pattern, as catalogued.                              *)
(* ---------------------------------------------------------------- *)

let figure2 () =
  banner "Figure 2 — the Iterator pattern (catalog entry)";
  print_endline (Hwpat_core.Pattern.describe Hwpat_core.Pattern.iterator)

(* ---------------------------------------------------------------- *)
(* Figures 4 and 5: generated VHDL for rbuffer over FIFO and SRAM.    *)
(* ---------------------------------------------------------------- *)

let figures_4_5 () =
  banner "Figure 4 — generated rbuffer_fifo (metaprogramming back-end)";
  let fifo_cfg =
    Hwpat_meta.Config.make ~instance_name:"rbuffer"
      ~kind:Hwpat_meta.Metamodel.Read_buffer ~target:Hwpat_meta.Metamodel.Fifo_core
      ~elem_width:8 ~depth:512 ()
  in
  print_endline (Hwpat_meta.Codegen.container_entity fifo_cfg);
  banner "Figure 5 — generated rbuffer_sram (implementation-interface delta)";
  let sram_cfg =
    Hwpat_meta.Config.make ~instance_name:"rbuffer"
      ~kind:Hwpat_meta.Metamodel.Read_buffer ~target:Hwpat_meta.Metamodel.Ext_sram
      ~elem_width:8 ~depth:512 ~addr_width:16 ()
  in
  print_endline (Hwpat_meta.Codegen.container_entity sram_cfg);
  Printf.printf "(lint: figure 4 %s, figure 5 %s)\n"
    (if Hwpat_meta.Vhdl_lint.is_clean (Hwpat_meta.Codegen.generate_container fifo_cfg)
     then "clean" else "ISSUES")
    (if Hwpat_meta.Vhdl_lint.is_clean (Hwpat_meta.Codegen.generate_container sram_cfg)
     then "clean" else "ISSUES")

(* ---------------------------------------------------------------- *)
(* Table 3: the design experiments.                                   *)
(* ---------------------------------------------------------------- *)

let table3_rows = lazy (Experiment.table3 ~frame_width:32 ~frame_height:32 ())

let table3 () =
  banner "Table 3 — design experiments (pattern/custom, ours vs paper)";
  print_string (Experiment.render_table3 (Lazy.force table3_rows));
  print_endline "";
  List.iter
    (fun r ->
      Printf.printf "  %-10s LUT overhead of the pattern version: %+.1f%%\n"
        r.Experiment.label
        (Hwpat_synthesis.Resource_report.overhead_percent r.Experiment.comparison))
    (Lazy.force table3_rows);
  print_endline
    "\n  Shape check (paper's claims): pattern ~ custom per design; saa2vga 1\n\
    \  uses 2 block RAMs vs 0 for saa2vga 2; blur >> copy designs in area.\n\
    \  Absolute numbers differ from the paper (our substrate is a calibrated\n\
    \  cost model, not ISE on real silicon); the relative structure is the\n\
    \  reproduced result."

(* ---------------------------------------------------------------- *)
(* Throughput: simulated cycles per pixel for every design.           *)
(* ---------------------------------------------------------------- *)

let throughput () =
  banner "Throughput — simulated cycles per pixel (16x16 frame)";
  let frame = Pattern.gradient ~width:16 ~height:16 ~depth:8 in
  let run circuit ~ow ~oh =
    (Experiment.run_video_system circuit ~input:frame ~out_width:ow ~out_height:oh)
      .Experiment.cycles_per_pixel
  in
  List.iter
    (fun (substrate, style) ->
      let c = Saa2vga.build ~depth:32 ~substrate ~style () in
      Printf.printf "  %-26s %6.2f cycles/pixel\n"
        (Saa2vga.name ~substrate ~style)
        (run c ~ow:16 ~oh:16))
    (Saa2vga.all_variants @ [ (Saa2vga.Sram_shared, Saa2vga.Pattern) ]);
  List.iter
    (fun style ->
      let c = Blur_system.build ~image_width:16 ~max_rows:16 ~style () in
      Printf.printf "  %-26s %6.2f cycles/pixel\n" (Blur_system.name ~style)
        (run c ~ow:14 ~oh:14))
    [ Blur_system.Pattern; Blur_system.Custom ];
  let sob = Sobel_system.build ~image_width:16 ~max_rows:16 () in
  Printf.printf "  %-26s %6.2f cycles/pixel\n" "sobel_pattern"
    (run sob ~ow:14 ~oh:14);
  print_endline
    "\n  The FIFO substrate sustains ~3 cycles/pixel; private SRAMs pay\n\
    \  wait states per access; the shared SRAM additionally serialises the\n\
    \  two buffers through the arbiter — §4's performance ordering."

(* ---------------------------------------------------------------- *)
(* §4 prose: FIFO vs SRAM design points across wait states.           *)
(* ---------------------------------------------------------------- *)

let design_space_section () =
  banner "§4 design space — FIFO vs SRAM points (wait-state sweep)";
  let points =
    { Characterize.container = "queue"; target = "fifo"; elem_width = 8;
      depth = 512; wait_states = 0 }
    :: List.map
         (fun ws ->
           { Characterize.container = "queue"; target = "sram"; elem_width = 8;
             depth = 512; wait_states = ws })
         [ 0; 1; 2; 3; 4 ]
  in
  let candidates = List.map Characterize.characterize points in
  print_endline (Hwpat_synthesis.Design_space.to_table candidates);
  print_endline
    "\n  The FIFO point: lowest cycles/access, costs a block RAM (max\n\
    \  performance at the highest cost). The SRAM points: no block RAM,\n\
    \  latency grows with wait states (smaller, memory-bound) — §4's two\n\
    \  ends of the design space.";
  banner "§3.4 region of interest under constraints (no block RAM)";
  print_endline
    (Characterize.region_report
       ~constraints:
         { Hwpat_synthesis.Design_space.no_constraints with
           Hwpat_synthesis.Design_space.max_brams = Some 0 }
       candidates)

(* ---------------------------------------------------------------- *)
(* Ablation A1: operation pruning.                                    *)
(* ---------------------------------------------------------------- *)

let ablation_pruning () =
  banner "Ablation A1 — unused-operation pruning (metamodel ports)";
  let full =
    Hwpat_meta.Config.make ~instance_name:"q" ~kind:Hwpat_meta.Metamodel.Queue
      ~target:Hwpat_meta.Metamodel.Ext_sram ~elem_width:8 ~depth:512 ()
  in
  let pruned =
    Hwpat_meta.Config.make ~instance_name:"q" ~kind:Hwpat_meta.Metamodel.Queue
      ~target:Hwpat_meta.Metamodel.Ext_sram ~elem_width:8 ~depth:512
      ~ops_used:[ Hwpat_meta.Metamodel.Read; Hwpat_meta.Metamodel.Inc ] ()
  in
  let count cfg =
    List.length (Hwpat_meta.Codegen.functional_ports cfg)
    + List.length (Hwpat_meta.Codegen.implementation_ports cfg)
  in
  Printf.printf "full interface   : %d ports\n" (count full);
  Printf.printf "read+inc pruned  : %d ports\n" (count pruned);
  Printf.printf
    "VHDL lines       : %d (full) vs %d (pruned)\n"
    (List.length (String.split_on_char '\n' (Hwpat_meta.Codegen.generate_container full)))
    (List.length (String.split_on_char '\n' (Hwpat_meta.Codegen.generate_container pruned)));
  (* At the netlist level: a random iterator generated with the full
     Table 2 operation set versus one with only read+inc. Tying the
     unused requests to ground lets the optimiser strip the dec/index/
     write machinery — "including only those resources that are really
     used by the selected operations". *)
  let open Hwpat_rtl.Signal in
  let open Hwpat_containers in
  let open Hwpat_iterators in
  let build ~pruned =
    let driver =
      {
        Iterator_intf.inc_req = input "inc" 1;
        dec_req = (if pruned then gnd else input "dec" 1);
        read_req = input "rd" 1;
        write_req = (if pruned then gnd else input "wr" 1);
        write_data = (if pruned then zero 8 else input "wd" 8);
        index_req = (if pruned then gnd else input "ix" 1);
        index_pos = (if pruned then zero 5 else input "ip" 5);
      }
    in
    let rit =
      Random_iterator.create ~length:16
        ~vector:(Vector_c.over_bram ~length:16 ~width:8)
        driver
    in
    let it = rit.Random_iterator.iterator in
    Hwpat_rtl.Optimize.circuit
      (Hwpat_rtl.Circuit.create_exn ~name:(if pruned then "pruned" else "full")
         [
           ("read_ack", it.Iterator_intf.read_ack);
           ("read_data", it.Iterator_intf.read_data);
           ("inc_ack", it.Iterator_intf.inc_ack);
         ])
  in
  let f = Hwpat_synthesis.Techmap.estimate (build ~pruned:false) in
  let r = Hwpat_synthesis.Techmap.estimate (build ~pruned:true) in
  Format.printf "random iterator, all ops (netlist) : %a@." Hwpat_synthesis.Techmap.pp f;
  Format.printf "random iterator, read+inc (netlist): %a@." Hwpat_synthesis.Techmap.pp r

(* ---------------------------------------------------------------- *)
(* Ablation A2: width adaptation (24-bit pixels over 8/24-bit buses).  *)
(* ---------------------------------------------------------------- *)

let ablation_width () =
  banner "Ablation A2 — pixel-format width adaptation (§3.3)";
  let open Hwpat_rtl.Signal in
  let open Hwpat_containers in
  let open Hwpat_iterators in
  let wide () =
    let d =
      { Container_intf.get_req = input "g" 1; put_req = input "p" 1;
        put_data = input "d" 24 }
    in
    let q = Queue_c.over_fifo ~depth:16 ~width:24 d in
    Hwpat_rtl.Circuit.create_exn ~name:"wide24"
      [ ("ga", q.Container_intf.get_ack); ("gd", q.Container_intf.get_data) ]
  in
  let narrow () =
    let driver =
      { (Iterator_intf.driver_stub ~data_width:24 ~pos_width:1) with
        Iterator_intf.read_req = input "r" 1; inc_req = input "i" 1 }
    in
    let it, () =
      Multi_word_iterator.input ~elem_width:24 ~bus_width:8
        ~build:(fun ~get_req ->
          let d =
            { Container_intf.get_req; put_req = input "p" 1;
              put_data = input "d" 8 }
          in
          (Queue_c.over_fifo ~depth:64 ~width:8 d, ()))
        driver
    in
    Hwpat_rtl.Circuit.create_exn ~name:"narrow8"
      [ ("ga", it.Iterator_intf.read_ack); ("gd", it.Iterator_intf.read_data) ]
  in
  let w = Hwpat_synthesis.Techmap.estimate (wide ()) in
  let n = Hwpat_synthesis.Techmap.estimate (narrow ()) in
  Format.printf "24-bit bus (regenerated base type): %a@." Hwpat_synthesis.Techmap.pp w;
  Format.printf "8-bit bus (multi-word iterator)   : %a@." Hwpat_synthesis.Techmap.pp n;
  (* And as complete video systems, functional equivalence included. *)
  let frame = Pattern.rgb_gradient ~width:8 ~height:6 in
  List.iter
    (fun bus ->
      let c = Saa2vga_rgb.build ~depth:32 ~bus () in
      let r =
        Experiment.run_video_system c ~input:frame ~out_width:8 ~out_height:6
      in
      let res = Hwpat_synthesis.Resource_report.of_circuit c in
      Printf.printf "%-20s %4d LUTs %4d FFs %2d BRAM  %5.1f cyc/px  %s\n"
        (match bus with `Wide -> "system, 24-bit bus:" | `Narrow -> "system, 8-bit bus:")
        res.Hwpat_synthesis.Resource_report.luts
        res.Hwpat_synthesis.Resource_report.ffs
        res.Hwpat_synthesis.Resource_report.brams
        r.Experiment.cycles_per_pixel
        (if Frame.equal r.Experiment.output frame then "lossless" else "CORRUPT"))
    [ `Wide; `Narrow ];
  print_endline
    "  The adaptation cost (word-sequencer FSM + assembly register) lives\n\
    \  in the iterator; the copy algorithm instance is identical in both."

(* ---------------------------------------------------------------- *)
(* Fault coverage: seeded campaigns with runtime monitors, and the    *)
(* resource price of the generated protection hardware.               *)
(* ---------------------------------------------------------------- *)

let faultcoverage () =
  banner "§faultcoverage — seeded fault campaigns (runtime monitors attached)";
  List.iter
    (fun design ->
      let summary =
        Faultsim.run_campaign ~seed:7 ~faults:12 ~build:(Faultsim.find_design design)
          ~design ()
      in
      Printf.printf
        "  %-28s %2d faults: %2d detected, %2d masked, %2d silent  (coverage %3.0f%%)\n"
        design
        (List.length summary.Faultsim.results)
        (Faultsim.count summary Faultsim.Detected)
        (Faultsim.count summary Faultsim.Masked)
        (Faultsim.count summary Faultsim.Silent)
        (100.0 *. Faultsim.coverage summary))
    [ "saa2vga_sram_pattern"; "saa2vga_sram_custom"; "saa2vga_sram_protected" ];
  print_endline "";
  print_endline
    "  Protection hardware overhead (saa2vga sram pattern vs protected):";
  print_endline Hwpat_synthesis.Resource_report.table3_header;
  print_endline
    (Hwpat_synthesis.Resource_report.table3_row (Faultsim.protection_overhead ()));
  (* Graceful degradation demo: hold the input SRAM's ack low and watch
     the protected design raise err and keep streaming. *)
  let open Hwpat_rtl in
  let circuit = Saa2vga.build_protected ~depth:16 ~op_timeout:(Some 8) ~faulty:true () in
  let frame = Pattern.gradient ~width:8 ~height:8 ~depth:8 in
  let collected, cycles, _, _, err =
    Faultsim.run_once
      ~events:
        [
          {
            Fault.at = 40;
            fault =
              Fault.Stuck_at
                {
                  signal = Circuit.find_input circuit "in_sram_fault_drop_ack";
                  value = Bits.one 1;
                  cycles = 0;
                };
          };
        ]
      ~budget:20_000 ~frame circuit
  in
  Printf.printf
    "\n\
    \  Degradation demo: in_sram ack held low from cycle 40 —\n\
    \  %d/%d pixels still delivered in %d cycles, err output %s.\n"
    (List.length collected) (Frame.pixels frame) cycles
    (if err then "high (degraded)" else "low")

(* ---------------------------------------------------------------- *)
(* §simthroughput: raw simulated cycles/sec, reference interpreter    *)
(* vs compiled levelized engine, with machine-readable output so the  *)
(* perf trajectory is tracked from PR 2 on.                           *)
(* ---------------------------------------------------------------- *)

type sim_bench = {
  sb_design : string;
  sb_engine : string;
  sb_cycles : int;
  sb_seconds : float;
}

let sb_rate b = float_of_int b.sb_cycles /. b.sb_seconds

let engine_name = function
  | Hwpat_rtl.Cyclesim.Reference -> "reference"
  | Hwpat_rtl.Cyclesim.Compiled -> "compiled"

let sim_throughput ?(smoke = false) () =
  banner
    (Printf.sprintf "§simthroughput — cycles/sec, reference vs compiled%s"
       (if smoke then " (smoke)" else ""));
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    max 1e-9 (Unix.gettimeofday () -. t0)
  in
  let side = if smoke then 8 else 16 in
  let cycles_per_design = if smoke then 2_000 else 50_000 in
  (* Raw engine throughput: one sim per (design, engine), input port
     refs cached up front, every input driven from a pool of
     pre-generated pseudorandom values (seeded LCG, so both engines see
     the identical stimulus and the timed loop allocates nothing).
     This measures the simulation engines themselves rather than the
     frame harness around them. *)
  let bench_design ~engine (name, circuit, _, _) =
    let open Hwpat_rtl in
    let sim = Cyclesim.create ~engine circuit in
    let pool_size = 64 in
    let rng = ref 0x2545F49 in
    let next () =
      rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
      !rng
    in
    let drivers =
      Circuit.inputs circuit
      |> List.map (fun (port, s) ->
             let w = Hwpat_rtl.Signal.width s in
             ( Cyclesim.in_port sim port,
               Array.init pool_size (fun _ -> Bits.of_int ~width:w (next ())) ))
      |> Array.of_list
    in
    let seconds =
      time (fun () ->
          for c = 1 to cycles_per_design do
            for k = 0 to Array.length drivers - 1 do
              let r, pool = drivers.(k) in
              r := pool.((c + k) land (pool_size - 1))
            done;
            Cyclesim.cycle sim
          done)
    in
    {
      sb_design = name;
      sb_engine = engine_name engine;
      sb_cycles = cycles_per_design;
      sb_seconds = seconds;
    }
  in
  let designs =
    [
      ( "saa2vga 1",
        Saa2vga.build ~depth:32 ~substrate:Saa2vga.Fifo ~style:Saa2vga.Pattern
          (),
        side,
        side );
      ( "saa2vga 2",
        Saa2vga.build ~depth:32 ~substrate:Saa2vga.Sram ~style:Saa2vga.Pattern
          (),
        side,
        side );
      ( "blur",
        Blur_system.build ~image_width:side ~max_rows:side
          ~style:Blur_system.Pattern (),
        side - 2,
        side - 2 );
    ]
  in
  let bench_faultsim ~engine =
    let faults = if smoke then 4 else 12 in
    let fw = if smoke then 4 else 8 in
    let summary = ref None in
    let seconds =
      time (fun () ->
          summary :=
            Some
              (Faultsim.run_campaign ~engine ~seed:7 ~faults ~frame_width:fw
                 ~frame_height:fw
                 ~build:(Faultsim.find_design "saa2vga_sram_pattern")
                 ~design:"saa2vga_sram_pattern" ()))
    in
    let summary = Option.get !summary in
    let cycles =
      List.fold_left
        (fun acc r -> acc + r.Faultsim.cycles)
        summary.Faultsim.baseline_cycles summary.Faultsim.results
    in
    {
      sb_design = "faultsim campaign";
      sb_engine = engine_name engine;
      sb_cycles = cycles;
      sb_seconds = seconds;
    }
  in
  let engines = [ Hwpat_rtl.Cyclesim.Reference; Hwpat_rtl.Cyclesim.Compiled ] in
  let entries =
    List.concat_map
      (fun engine -> List.map (bench_design ~engine) designs)
      engines
    @ List.map (fun engine -> bench_faultsim ~engine) engines
  in
  let find design engine =
    List.find (fun b -> b.sb_design = design && b.sb_engine = engine) entries
  in
  let design_names =
    List.map (fun (n, _, _, _) -> n) designs @ [ "faultsim campaign" ]
  in
  let speedups =
    List.map
      (fun d -> (d, sb_rate (find d "compiled") /. sb_rate (find d "reference")))
      design_names
  in
  List.iter
    (fun d ->
      let r = find d "reference" and c = find d "compiled" in
      Printf.printf
        "  %-18s reference %10.0f cyc/s   compiled %10.0f cyc/s   (%.1fx)\n" d
        (sb_rate r) (sb_rate c)
        (List.assoc d speedups))
    design_names;
  (* Machine-readable record. *)
  let json =
    let buf = Buffer.create 1024 in
    let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    emit "{\n  \"bench\": \"simthroughput\",\n  \"smoke\": %b,\n"
      smoke;
    emit "  \"entries\": [\n";
    List.iteri
      (fun i b ->
        emit
          "    {\"design\": %S, \"engine\": %S, \"cycles\": %d, \"seconds\": \
           %.6f, \"cycles_per_sec\": %.1f}%s\n"
          b.sb_design b.sb_engine b.sb_cycles b.sb_seconds (sb_rate b)
          (if i = List.length entries - 1 then "" else ","))
      entries;
    emit "  ],\n  \"speedup_compiled_over_reference\": {\n";
    List.iteri
      (fun i (d, s) ->
        emit "    %S: %.2f%s\n" d s
          (if i = List.length speedups - 1 then "" else ","))
      speedups;
    emit "  }\n}\n";
    Buffer.contents buf
  in
  let path = "BENCH_sim.json" in
  Hwpat_rtl.Util.write_file path json;
  Printf.printf "\n  wrote %s\n" path

(* ---------------------------------------------------------------- *)
(* §parscaling: domain-sharded campaigns and sweeps, jobs vs          *)
(* throughput, with a bit-identical-to-serial check on every run.     *)
(* ---------------------------------------------------------------- *)

type par_bench = {
  pb_workload : string;
  pb_jobs : int;
  pb_effective : int;
      (* domains that can actually run concurrently: min jobs recommended *)
  pb_oversubscribed : bool;
      (* more domains requested than the machine recommends — the
         timing measures scheduler overhead, not scaling, and is
         flagged rather than trusted *)
  pb_seconds : float;
  pb_identical : bool; (* output bytes equal to the jobs:1 run *)
}

(* [gate] enforces the CI scaling contract: on a machine with at least
   four recommended domains, the jobs:4 rows must beat serial
   (speedup > 1.0) for every workload.  On narrower machines the gate
   reports itself skipped — an oversubscribed timing proves nothing
   about scaling either way. *)
let parscaling ?(smoke = false) ?(max_jobs = 4) ?(gate = false) () =
  banner
    (Printf.sprintf
       "§parscaling — sharded campaigns and sweeps (recommended domains: %d)%s"
       (Domain.recommended_domain_count ())
       (if smoke then " (smoke)" else ""));
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, max 1e-9 (Unix.gettimeofday () -. t0))
  in
  let jobs_list =
    List.sort_uniq compare
      (1 :: List.filter (fun j -> j <= max_jobs) [ 2; 4 ]
      @ [ Hwpat_core.Parallel.clamp_jobs max_jobs ])
  in
  let faults = if smoke then 6 else 16 in
  let fw = if smoke then 6 else 8 in
  let campaign jobs =
    Faultsim.run_campaign ~jobs ~seed:7 ~faults ~frame_width:fw
      ~frame_height:fw
      ~build:(Faultsim.find_design "saa2vga_sram_pattern")
      ~design:"saa2vga_sram_pattern" ()
  in
  let sweep_points =
    if smoke then
      [
        { Characterize.container = "queue"; target = "fifo"; elem_width = 8;
          depth = 64; wait_states = 0 };
        { Characterize.container = "queue"; target = "sram"; elem_width = 8;
          depth = 64; wait_states = 1 };
        { Characterize.container = "stack"; target = "bram"; elem_width = 8;
          depth = 64; wait_states = 0 };
        { Characterize.container = "vector"; target = "bram"; elem_width = 8;
          depth = 64; wait_states = 0 };
      ]
    else Characterize.default_points
  in
  let sweep jobs =
    Hwpat_synthesis.Design_space.to_json
      (Characterize.sweep ~jobs ~points:sweep_points ())
  in
  let workloads =
    [
      ("faultsim campaign", fun jobs -> Faultsim.summary_to_json (campaign jobs));
      ("characterisation sweep", sweep);
    ]
  in
  let recommended = Domain.recommended_domain_count () in
  let entries =
    List.concat_map
      (fun (name, run) ->
        let serial = ref None in
        List.map
          (fun jobs ->
            let out, seconds = time (fun () -> run jobs) in
            let identical =
              match !serial with
              | None ->
                serial := Some out;
                true
              | Some s -> String.equal s out
            in
            { pb_workload = name; pb_jobs = jobs;
              pb_effective = min jobs recommended;
              pb_oversubscribed = jobs > recommended;
              pb_seconds = seconds; pb_identical = identical })
          jobs_list)
      workloads
  in
  let seconds_at workload jobs =
    (List.find (fun e -> e.pb_workload = workload && e.pb_jobs = jobs) entries)
      .pb_seconds
  in
  let speedup e = seconds_at e.pb_workload 1 /. e.pb_seconds in
  List.iter
    (fun e ->
      Printf.printf "  %-24s jobs:%d (eff %d)  %7.3f s  speedup %.2fx  %s%s\n"
        e.pb_workload e.pb_jobs e.pb_effective e.pb_seconds (speedup e)
        (if e.pb_identical then "bit-identical to serial"
         else "OUTPUT DIVERGED")
        (if e.pb_oversubscribed then "  [oversubscribed]" else "");
      if not e.pb_identical then begin
        Printf.eprintf
          "parscaling: %s at jobs:%d is not bit-identical to the serial run\n"
          e.pb_workload e.pb_jobs;
        exit 1
      end)
    entries;
  if gate then begin
    if recommended < 4 || max_jobs < 4 then
      Printf.printf
        "\n  speedup gate skipped: %d recommended domain(s), max jobs %d — \
         jobs:4 rows would be oversubscribed\n"
        recommended max_jobs
    else begin
      let failures =
        List.filter (fun e -> e.pb_jobs = 4 && speedup e <= 1.0) entries
      in
      List.iter
        (fun e ->
          Printf.eprintf
            "parscaling gate: %s at jobs:4 is %.2fx vs serial (need > 1.0)\n"
            e.pb_workload (speedup e))
        failures;
      if failures <> [] then exit 1;
      Printf.printf "\n  speedup gate passed: all jobs:4 rows beat serial\n"
    end
  end;
  let json =
    let buf = Buffer.create 1024 in
    let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    emit "{\n  \"bench\": \"parscaling\",\n  \"smoke\": %b,\n" smoke;
    emit "  \"recommended_domains\": %d,\n"
      (Domain.recommended_domain_count ());
    emit "  \"entries\": [\n";
    List.iteri
      (fun i e ->
        emit
          "    {\"workload\": %S, \"jobs\": %d, \"effective_jobs\": %d, \
           \"oversubscribed\": %b, \"seconds\": %.6f, \
           \"speedup_vs_jobs1\": %.2f, \"identical_to_serial\": %b}%s\n"
          e.pb_workload e.pb_jobs e.pb_effective e.pb_oversubscribed
          e.pb_seconds (speedup e) e.pb_identical
          (if i = List.length entries - 1 then "" else ","))
      entries;
    emit "  ]\n}\n";
    Buffer.contents buf
  in
  let path = "BENCH_par.json" in
  Hwpat_rtl.Util.write_file path json;
  Printf.printf "\n  wrote %s\n" path

(* ---------------------------------------------------------------- *)
(* §batchsim: the bit-parallel batched engine — fault-campaign        *)
(* throughput at 1/4/16/64 lanes vs the scalar compiled engine, with  *)
(* a byte-identity check on every row.                                *)
(* ---------------------------------------------------------------- *)

type batch_bench = {
  bb_label : string;
  bb_lanes : int option; (* None = scalar compiled engine *)
  bb_seconds : float;
  bb_identical : bool; (* summary bytes equal to the scalar run *)
}

(* Everything runs at jobs:1 so the rows measure lane batching alone,
   not domain parallelism (§parscaling owns that axis; the two
   compose). [gate] enforces the CI contract: the 64-lane row of a
   64-fault campaign must be at least 8x faster than the scalar row.
   When the scalar run is too fast to time against noise the gate
   reports itself skipped rather than passing or failing on jitter. *)
let batchsim ?(smoke = false) ?(gate = false) () =
  banner
    (Printf.sprintf "§batchsim — bit-parallel batched fault campaigns%s"
       (if smoke then " (smoke)" else ""));
  (* Best-of-3 wall time: a single run's ratio jitters across the
     gate threshold on a loaded machine; the per-row minimum is the
     least-noise estimate of the true cost. *)
  let time f =
    let once () =
      let t0 = Unix.gettimeofday () in
      let v = f () in
      (v, max 1e-9 (Unix.gettimeofday () -. t0))
    in
    let v, s0 = once () in
    let _, s1 = once () in
    let _, s2 = once () in
    (v, min s0 (min s1 s2))
  in
  (* 64 faults = one full batch at 64 lanes — the gate's own shape —
     even in smoke; only the frame shrinks there. Frames are sized so
     per-campaign setup (circuit build, plan compile, golden frame) is
     amortised: below ~10x10 the constant term drags the 64-lane ratio
     under the gate even though per-cycle throughput clears it. *)
  let faults = 64 in
  let fw = if smoke then 12 else 16 in
  let campaign ?lanes () =
    Faultsim.summary_to_json
      (Faultsim.run_campaign ?lanes ~jobs:1 ~seed:7 ~faults ~frame_width:fw
         ~frame_height:fw
         ~build:(Faultsim.find_design "saa2vga_sram_pattern")
         ~design:"saa2vga_sram_pattern" ())
  in
  let scalar_out, scalar_seconds = time (fun () -> campaign ()) in
  let rows =
    { bb_label = "scalar"; bb_lanes = None; bb_seconds = scalar_seconds;
      bb_identical = true }
    :: List.map
         (fun lanes ->
           let out, seconds = time (fun () -> campaign ~lanes ()) in
           { bb_label = Printf.sprintf "lanes:%d" lanes;
             bb_lanes = Some lanes; bb_seconds = seconds;
             bb_identical = String.equal scalar_out out })
         [ 1; 4; 16; 64 ]
  in
  let speedup r = scalar_seconds /. r.bb_seconds in
  List.iter
    (fun r ->
      Printf.printf "  %-10s %8.3f s  speedup %5.2fx  %s\n" r.bb_label
        r.bb_seconds (speedup r)
        (if r.bb_identical then "byte-identical to scalar"
         else "OUTPUT DIVERGED");
      if not r.bb_identical then begin
        Printf.eprintf
          "batchsim: %s summary is not byte-identical to the scalar run\n"
          r.bb_label;
        exit 1
      end)
    rows;
  let gate_skipped_noise = scalar_seconds < 0.05 in
  if gate then
    if gate_skipped_noise then
      Printf.printf
        "\n  speedup gate skipped: scalar run finished in %.3f s — too fast \
         to time against noise\n"
        scalar_seconds
    else begin
      let r64 = List.find (fun r -> r.bb_lanes = Some 64) rows in
      if speedup r64 < 8.0 then begin
        Printf.eprintf
          "batchsim gate: 64 lanes is %.2fx vs scalar (need >= 8.0)\n"
          (speedup r64);
        exit 1
      end;
      Printf.printf "\n  speedup gate passed: 64 lanes is %.2fx vs scalar\n"
        (speedup r64)
    end;
  let json =
    let buf = Buffer.create 1024 in
    let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    emit "{\n  \"bench\": \"batchsim\",\n  \"smoke\": %b,\n" smoke;
    emit "  \"design\": \"saa2vga_sram_pattern\",\n";
    emit "  \"faults\": %d,\n  \"frame\": \"%dx%d\",\n" faults fw fw;
    emit "  \"entries\": [\n";
    List.iteri
      (fun i r ->
        emit
          "    {\"label\": %S, \"lanes\": %s, \"seconds\": %.6f, \
           \"speedup_vs_scalar\": %.2f, \"identical_to_scalar\": %b}%s\n"
          r.bb_label
          (match r.bb_lanes with None -> "null" | Some l -> string_of_int l)
          r.bb_seconds (speedup r) r.bb_identical
          (if i = List.length rows - 1 then "" else ","))
      rows;
    emit "  ]\n}\n";
    Buffer.contents buf
  in
  let path = "BENCH_batch.json" in
  Hwpat_rtl.Util.write_file path json;
  Printf.printf "\n  wrote %s\n" path

(* ---------------------------------------------------------------- *)
(* §prove: the formal proof battery — monitor BMC on the paper        *)
(* designs, optimizer equivalence, pruned-container equivalence.      *)
(* ---------------------------------------------------------------- *)

let prove_section ?(smoke = false) ?(max_jobs = 4) ?(gate = false) () =
  banner
    (Printf.sprintf "§prove — formal proof battery%s"
       (if smoke then " (smoke)" else ""));
  let jobs = Parallel.clamp_jobs max_jobs in
  let results = Prove.run ~jobs ~smoke () in
  print_string (Prove.summary results);
  let path = "BENCH_prove.json" in
  Hwpat_rtl.Util.write_file path (Prove.to_json ~jobs ~smoke results);
  Printf.printf "\n  wrote %s\n" path;
  if not (Prove.all_ok results) then exit 1;
  if gate then begin
    (* Two checks on the battery's historically worst obligation — the
       blur equivalence, 37.7 s of the 76.2 s committed full-battery
       baseline before the structural-hashing rework:

       1. Deterministic: the strash engine must spend under half the
          solver propagations of the legacy per-occurrence blast
          encoding on the same miter.  Operation counts replay
          identically on every machine, so this cannot flake and
          needs no skip.

       2. Wall clock: the strashed proof must land at least 2x under
          the baseline row recorded in the committed BENCH_prove.json.
          A recorded number is only comparable on a machine of the
          same speed class, so the gate first calibrates with the
          blast run: if even that takes longer than the recorded row,
          the machine is too slow/narrow to judge and the gate
          reports itself skipped. *)
    let baseline_blur_s = 37.666 in
    let c =
      Blur_system.build ~image_width:8 ~max_rows:8 ~style:Blur_system.Pattern
        ()
    in
    let o = Hwpat_rtl.Optimize.circuit c in
    let run strash =
      let m = Hwpat_obs.Metrics.create () in
      let t0 = Unix.gettimeofday () in
      (match Hwpat_formal.Equiv.check ~metrics:m ~strash c o with
      | Hwpat_formal.Equiv.Proved -> ()
      | Hwpat_formal.Equiv.Counterexample _ | Hwpat_formal.Equiv.Unknown _ ->
        Printf.printf "prove gate: blur equivalence not proved\n";
        exit 1);
      ( Unix.gettimeofday () -. t0,
        Hwpat_obs.Metrics.counter_value m "solver.propagations" )
    in
    let strash_s, strash_props = run true in
    let blast_s, blast_props = run false in
    let ratio = float_of_int blast_props /. float_of_int (max 1 strash_props) in
    if ratio < 2.0 then begin
      Printf.printf
        "prove gate: strash spends %d solver propagations vs %d for blast \
         (%.2fx, need >= 2.0)\n"
        strash_props blast_props ratio;
      exit 1
    end;
    Printf.printf
      "\n  encoding gate passed: strash needs %.1fx fewer solver \
       propagations than blast (%d vs %d)\n"
      ratio strash_props blast_props;
    if blast_s > baseline_blur_s then
      Printf.printf
        "  speedup gate skipped: even the legacy blast proof took %.1f s \
         here (recorded baseline row %.1f s) — machine too slow to compare \
         wall clocks\n"
        blast_s baseline_blur_s
    else if strash_s > baseline_blur_s /. 2.0 then begin
      Printf.printf
        "prove gate: blur equivalence took %.2f s vs the %.1f s committed \
         baseline row (need >= 2x)\n"
        strash_s baseline_blur_s;
      exit 1
    end
    else
      Printf.printf
        "  speedup gate passed: blur equivalence %.2f s vs %.1f s committed \
         baseline row (%.1fx)\n"
        strash_s baseline_blur_s
        (baseline_blur_s /. max 1e-9 strash_s)
  end

(* ---------------------------------------------------------------- *)
(* §obsoverhead: cost of the observability layer on the blur          *)
(* workload.  The same [Experiment.run_video_system] call is timed    *)
(* with hooks disabled ([Trace.null]/[Metrics.null], the default),    *)
(* with tracing enabled, and with tracing and metrics both enabled;   *)
(* the fully-enabled run must stay within 3% of the disabled one.     *)
(* Timing is interleaved round-robin across the configs and the       *)
(* per-config minimum is taken, so clock-frequency drift and          *)
(* scheduler noise hit every config alike instead of faking an        *)
(* overhead on whichever config was measured in a slow period.        *)
(* ---------------------------------------------------------------- *)

let obsoverhead ?(smoke = false) () =
  banner
    (Printf.sprintf "§obsoverhead — observability layer cost, blur workload%s"
       (if smoke then " (smoke)" else ""));
  let module Trace = Hwpat_obs.Trace in
  let module Metrics = Hwpat_obs.Metrics in
  let side = if smoke then 16 else 32 in
  let reps = if smoke then 15 else 21 in
  let circuit =
    Blur_system.build ~image_width:side ~max_rows:side
      ~style:Blur_system.Pattern ()
  in
  let frame = Pattern.gradient ~width:side ~height:side ~depth:8 in
  let cycles = ref 0 in
  let run ~trace ~metrics () =
    let r =
      Experiment.run_video_system ~trace ~metrics circuit ~input:frame
        ~out_width:(side - 2) ~out_height:(side - 2)
    in
    cycles := r.Experiment.cycles
  in
  let time_once f =
    let t0 = Unix.gettimeofday () in
    f ();
    max 1e-9 (Unix.gettimeofday () -. t0)
  in
  (* Warm-up: touch every code path once before timing anything. *)
  run ~trace:(Trace.create ()) ~metrics:(Metrics.create ()) ();
  let configs =
    [
      ( "disabled",
        fun () -> run ~trace:Trace.null ~metrics:Metrics.null () );
      ( "trace",
        fun () -> run ~trace:(Trace.create ()) ~metrics:Metrics.null () );
      ( "trace+metrics",
        fun () -> run ~trace:(Trace.create ()) ~metrics:(Metrics.create ()) () );
    ]
  in
  let best = Array.make (List.length configs) infinity in
  for _ = 1 to reps do
    List.iteri
      (fun i (_, f) -> best.(i) <- min best.(i) (time_once f))
      configs
  done;
  let timed = List.mapi (fun i (name, _) -> (name, best.(i))) configs in
  let t_disabled = List.assoc "disabled" timed in
  let overhead_pct name =
    100.0 *. (List.assoc name timed -. t_disabled) /. t_disabled
  in
  List.iter
    (fun (name, seconds) ->
      Printf.printf "  %-14s %8.3f ms/run  %10.0f cyc/s%s\n" name
        (1000.0 *. seconds)
        (float_of_int !cycles /. seconds)
        (if name = "disabled" then ""
         else Printf.sprintf "   (%+.2f%%)" (overhead_pct name)))
    timed;
  let budget_pct = 3.0 in
  let worst = overhead_pct "trace+metrics" in
  let ok = worst < budget_pct in
  Printf.printf "  fully-enabled overhead %+.2f%% vs disabled (budget %.0f%%): %s\n"
    worst budget_pct
    (if ok then "PASS" else "FAIL");
  let json =
    let buf = Buffer.create 512 in
    let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    emit "{\n  \"bench\": \"obsoverhead\",\n  \"smoke\": %b,\n" smoke;
    emit "  \"workload\": \"blur %dx%d\",\n  \"cycles\": %d,\n  \"reps\": %d,\n"
      side side !cycles reps;
    emit "  \"configs\": [\n";
    List.iteri
      (fun i (name, seconds) ->
        emit
          "    {\"config\": %S, \"min_seconds\": %.6f, \"overhead_pct\": %.3f}%s\n"
          name seconds
          (if name = "disabled" then 0.0 else overhead_pct name)
          (if i = List.length timed - 1 then "" else ","))
      timed;
    emit "  ],\n  \"budget_pct\": %.1f,\n  \"ok\": %b\n}\n" budget_pct ok;
    Buffer.contents buf
  in
  let path = "BENCH_obs.json" in
  Hwpat_rtl.Util.write_file path json;
  Printf.printf "\n  wrote %s\n" path;
  if not ok then exit 1

(* ---------------------------------------------------------------- *)
(* §resilience: cost and fidelity of supervised execution.            *)
(* (a) Checkpoint overhead: the same faultsim campaign is timed with  *)
(* and without a journal, interleaved round-robin with per-config     *)
(* minima (the §obsoverhead discipline); the journaled run must stay  *)
(* within 3% of the plain one.                                        *)
(* (b) Resume fidelity: a full journal is cut down to half its        *)
(* entries with the final line torn mid-record — exactly what a       *)
(* SIGKILL leaves behind — and the campaign resumed from it; the      *)
(* resumed summary must be byte-identical to the uninterrupted one.   *)
(* ---------------------------------------------------------------- *)

let resilience ?(smoke = false) () =
  banner
    (Printf.sprintf "§resilience — supervised campaign execution%s"
       (if smoke then " (smoke)" else ""));
  (* Shards must be long enough that the per-shard journal append (a
     constant sub-millisecond cost) and scheduler noise cannot
     masquerade as overhead on the 3% budget. *)
  let faults = if smoke then 32 else 60 in
  let fw = if smoke then 14 else 16 in
  let reps = if smoke then 15 else 15 in
  let design = "saa2vga_sram_pattern" in
  let build = Faultsim.find_design design in
  let journal = Filename.temp_file "hwpat_bench_resil" ".jsonl" in
  (* The overhead guard runs serially: the journal mechanism (append +
     flush per completed shard) is identical at any job count, and at
     jobs:1 there is no domain-spawn / GC-synchronisation jitter — on
     a busy box that jitter is ±5%, an order of magnitude larger than
     the journal cost it would be measured against.  Resume fidelity
     below still exercises the sharded path. *)
  let campaign ?(jobs = 1) ?checkpoint ?(resume = false) () =
    Faultsim.run_campaign ~jobs ~seed:7 ~faults ~frame_width:fw
      ~frame_height:fw ?checkpoint ~resume ~build ~design ()
  in
  let time_once f =
    (* Settle the GC first so debt from the previous run (the other
       config) is not billed to this one. *)
    Gc.major ();
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    max 1e-9 (Unix.gettimeofday () -. t0)
  in
  (* Warm-up: touch both code paths before timing. *)
  ignore (campaign ~checkpoint:journal ());
  (* Each rep times the two configs back to back and takes their
     ratio: clock-frequency and cgroup-throttle epochs span several
     seconds, so they hit both halves of a pair alike and cancel in
     the ratio where they would dominate an unpaired min-of-reps.
     The median pair is then robust to the occasional rep that
     straddles an epoch boundary. *)
  let t_plain = ref infinity and t_journal = ref infinity in
  let pair_pct =
    Array.init reps (fun _ ->
        let p = time_once (fun () -> campaign ()) in
        (* resume:false rewrites the journal, so every rep pays the
           full per-shard append+flush cost. *)
        let j = time_once (fun () -> campaign ~checkpoint:journal ()) in
        t_plain := min !t_plain p;
        t_journal := min !t_journal j;
        100.0 *. (j -. p) /. p)
  in
  Array.sort compare pair_pct;
  let overhead_pct = pair_pct.(reps / 2) in
  let budget_pct = 3.0 in
  let overhead_ok = overhead_pct < budget_pct in
  Printf.printf "  %-22s %8.3f s/run (min of %d)\n" "no checkpoint" !t_plain
    reps;
  Printf.printf "  %-22s %8.3f s/run (min of %d)\n" "checkpoint journal"
    !t_journal reps;
  Printf.printf
    "  checkpoint overhead %+.2f%% (median of paired reps, budget %.0f%%): %s\n"
    overhead_pct budget_pct
    (if overhead_ok then "PASS" else "FAIL");
  (* (b) Crash-and-resume fidelity, across the sharded path. *)
  let reference = Faultsim.render (campaign ~jobs:2 ~checkpoint:journal ()) in
  let lines =
    let ic = open_in journal in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let acc = ref [] in
    (try
       while true do
         acc := input_line ic :: !acc
       done
     with End_of_file -> ());
    List.rev !acc
  in
  let keep = 1 + ((List.length lines - 1) / 2) in
  let oc = open_out journal in
  List.iteri
    (fun i line ->
      if i < keep then (output_string oc line; output_char oc '\n'))
    lines;
  (* a torn final record, no trailing newline *)
  output_string oc "{\"key\": \"torn";
  close_out oc;
  let resumed =
    Faultsim.render (campaign ~jobs:2 ~checkpoint:journal ~resume:true ())
  in
  Sys.remove journal;
  let identical = String.equal reference resumed in
  Printf.printf
    "  resume from a torn half-journal (%d of %d lines): %s\n" keep
    (List.length lines)
    (if identical then "byte-identical summary" else "SUMMARY DIVERGED");
  let ok = overhead_ok && identical in
  let json =
    let buf = Buffer.create 512 in
    let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    emit "{\n  \"bench\": \"resilience\",\n  \"smoke\": %b,\n" smoke;
    emit "  \"workload\": \"faultsim %s %d faults %dx%d\",\n" design faults fw
      fw;
    emit "  \"reps\": %d,\n" reps;
    emit "  \"plain_min_seconds\": %.6f,\n" !t_plain;
    emit "  \"checkpoint_min_seconds\": %.6f,\n" !t_journal;
    emit "  \"paired_overhead_pcts\": [%s],\n"
      (String.concat ", "
         (Array.to_list (Array.map (Printf.sprintf "%.3f") pair_pct)));
    emit "  \"checkpoint_overhead_pct\": %.3f,\n" overhead_pct;
    emit "  \"budget_pct\": %.1f,\n" budget_pct;
    emit "  \"resume_identical\": %b,\n" identical;
    emit "  \"ok\": %b\n}\n" ok;
    Buffer.contents buf
  in
  let path = "BENCH_resil.json" in
  Hwpat_rtl.Util.write_file path json;
  Printf.printf "\n  wrote %s\n" path;
  if not ok then exit 1

(* ---------------------------------------------------------------- *)
(* §serve: the design-service daemon, measured end to end through a   *)
(* real connection.  (a) Cold vs warm latency for an elaborate +      *)
(* simulate pair — the warm pair answers from the canonical-key       *)
(* caches and must be at least 5x faster when gated.  (b) Sustained   *)
(* request throughput: a pipelined stream of requests through a       *)
(* jobs:4 pool, reported as requests/sec.                             *)
(* ---------------------------------------------------------------- *)

let serve_section ?(smoke = false) ?(gate = false) () =
  banner
    (Printf.sprintf "§serve — design-service daemon, cold vs warm cache%s"
       (if smoke then " (smoke)" else ""));
  let module Server = Hwpat_serve.Server in
  let write_all fd s =
    let n = String.length s in
    let rec go off =
      if off < n then go (off + Unix.write_substring fd s off (n - off))
    in
    go 0
  in
  (* A pipelined client: send [lines], read until the same number of
     newline-terminated responses has arrived, and fail loudly if any
     of them is an error — a bench that times rejections would be
     measuring the wrong thing. *)
  let roundtrip fd lines =
    write_all fd (String.concat "\n" lines ^ "\n");
    let want = List.length lines in
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 65536 in
    let got = ref 0 in
    while !got < want do
      let r = Unix.read fd chunk 0 (Bytes.length chunk) in
      if r = 0 then failwith "serve bench: connection closed early";
      for i = 0 to r - 1 do
        if Bytes.get chunk i = '\n' then incr got
      done;
      Buffer.add_subbytes buf chunk 0 r
    done;
    let out = Buffer.contents buf in
    List.iter
      (fun line ->
        match String.index_opt line ':' with
        | Some i when String.length line > i + 1 ->
          let tag = String.sub line (i + 1) 7 in
          if String.length tag >= 6 && String.sub tag 0 6 = "\"error" then
            failwith ("serve bench: error response: " ^ line)
        | _ -> ())
      (String.split_on_char '\n' out);
    out
  in
  let with_server ~jobs f =
    let server =
      Server.create
        { Server.default_config with jobs; max_inflight = 512; queue_bound = 512 }
    in
    let client, srv = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let conn = Domain.spawn (fun () -> Server.serve_connection server srv srv) in
    Fun.protect
      ~finally:(fun () ->
        Unix.close client;
        Domain.join conn;
        Unix.close srv;
        Server.stop server;
        Server.shutdown server)
      (fun () -> f client)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, max 1e-9 (Unix.gettimeofday () -. t0))
  in
  let side = if smoke then 10 else 16 in
  let pair =
    [
      Printf.sprintf
        "{\"id\":1,\"method\":\"elaborate\",\"params\":{\"container\":\"queue\",\
         \"target\":\"bram\",\"width\":8,\"depth\":4096}}";
      Printf.sprintf
        "{\"id\":2,\"method\":\"simulate\",\"params\":{\"design\":\"blur\",\
         \"width\":%d,\"height\":%d}}"
        side side;
    ]
  in
  (* (a) Cold vs warm on a single-worker server: the first pair pays
     elaboration and plan compilation, every later pair answers from
     the result cache.  Warm latency is a min-of-reps (the cost is
     microseconds; a single sample is all scheduler noise). *)
  let warm_reps = 20 in
  let cold_s, warm_s, warm_identical =
    with_server ~jobs:1 (fun fd ->
        let cold_out, cold_s = time (fun () -> roundtrip fd pair) in
        let warm_s = ref infinity in
        let identical = ref true in
        for _ = 1 to warm_reps do
          let out, s = time (fun () -> roundtrip fd pair) in
          warm_s := min !warm_s s;
          if not (String.equal out cold_out) then identical := false
        done;
        (cold_s, !warm_s, !identical))
  in
  let speedup = cold_s /. warm_s in
  Printf.printf "  cold elaborate+simulate   %8.3f ms\n" (1000.0 *. cold_s);
  Printf.printf "  warm elaborate+simulate   %8.3f ms  (min of %d)\n"
    (1000.0 *. warm_s) warm_reps;
  Printf.printf "  warm speedup              %8.1fx  %s\n" speedup
    (if warm_identical then "responses byte-identical to cold"
     else "RESPONSES DIVERGED");
  if not warm_identical then begin
    Printf.eprintf
      "serve bench: warm responses are not byte-identical to the cold run\n";
    exit 1
  end;
  (* (b) Sustained throughput: one pipelined connection, jobs:4 pool,
     all requests warm — the steady state a build system or sweep
     driver would see. *)
  let stream_n = if smoke then 200 else 1_000 in
  let stream_req i =
    Printf.sprintf
      "{\"id\":%d,\"method\":\"simulate\",\"params\":{\"design\":\"blur\",\
       \"width\":%d,\"height\":%d}}"
      i side side
  in
  let stream_s =
    with_server ~jobs:4 (fun fd ->
        (* warm the caches outside the timed window *)
        ignore (roundtrip fd [ stream_req 0 ]);
        let _, s =
          time (fun () ->
              roundtrip fd (List.init stream_n (fun i -> stream_req (i + 1))))
        in
        s)
  in
  let req_per_s = float_of_int stream_n /. stream_s in
  Printf.printf "  sustained (jobs:4, warm)  %8.0f req/s  (%d requests)\n"
    req_per_s stream_n;
  let gate_skipped_noise = cold_s < 0.002 in
  if gate then
    if gate_skipped_noise then
      Printf.printf
        "\n  speedup gate skipped: cold pair finished in %.3f ms — too fast \
         to time against noise\n"
        (1000.0 *. cold_s)
    else if speedup < 5.0 then begin
      Printf.eprintf
        "serve gate: warm cache is %.2fx vs cold (need >= 5.0)\n" speedup;
      exit 1
    end
    else
      Printf.printf "\n  speedup gate passed: warm cache is %.1fx vs cold\n"
        speedup;
  let json =
    let buf = Buffer.create 512 in
    let emit fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    emit "{\n  \"bench\": \"serve\",\n  \"smoke\": %b,\n" smoke;
    emit "  \"workload\": \"elaborate queue/bram d=4096 + simulate blur %dx%d\",\n"
      side side;
    emit "  \"cold_seconds\": %.6f,\n" cold_s;
    emit "  \"warm_min_seconds\": %.6f,\n" warm_s;
    emit "  \"warm_reps\": %d,\n" warm_reps;
    emit "  \"warm_speedup\": %.2f,\n" speedup;
    emit "  \"warm_identical\": %b,\n" warm_identical;
    emit "  \"stream_requests\": %d,\n" stream_n;
    emit "  \"stream_jobs\": 4,\n";
    emit "  \"stream_seconds\": %.6f,\n" stream_s;
    emit "  \"requests_per_sec\": %.1f\n}\n" req_per_s;
    Buffer.contents buf
  in
  let path = "BENCH_serve.json" in
  Hwpat_rtl.Util.write_file path json;
  Printf.printf "\n  wrote %s\n" path

(* ---------------------------------------------------------------- *)
(* Bechamel wall-clock benches: one per table.                        *)
(* ---------------------------------------------------------------- *)

let bechamel_section () =
  banner "Wall-clock benches (bechamel): simulation throughput per design";
  let open Bechamel in
  let frame = Pattern.gradient ~width:8 ~height:8 ~depth:8 in
  let run_copy circuit () =
    ignore
      (Experiment.run_video_system circuit ~input:frame ~out_width:8 ~out_height:8)
  in
  let run_blur circuit () =
    ignore
      (Experiment.run_video_system circuit ~input:frame ~out_width:6 ~out_height:6)
  in
  (* Table 3 benches: one frame through each design (8x8). *)
  let t3_tests =
    List.map
      (fun (substrate, style) ->
        let circuit = Saa2vga.build ~depth:16 ~substrate ~style () in
        Test.make
          ~name:(Saa2vga.name ~substrate ~style)
          (Staged.stage (run_copy circuit)))
      Saa2vga.all_variants
    @ List.map
        (fun style ->
          let circuit = Blur_system.build ~image_width:8 ~max_rows:8 ~style () in
          Test.make ~name:(Blur_system.name ~style) (Staged.stage (run_blur circuit)))
        [ Blur_system.Pattern; Blur_system.Custom ]
  in
  (* Table 1/2 bench: metamodel table generation + VHDL generation. *)
  let codegen_test =
    Test.make ~name:"codegen_rbuffer_sram"
      (Staged.stage (fun () ->
           let cfg =
             Hwpat_meta.Config.make ~instance_name:"rbuffer"
               ~kind:Hwpat_meta.Metamodel.Read_buffer
               ~target:Hwpat_meta.Metamodel.Ext_sram ~elem_width:8 ~depth:512 ()
           in
           ignore (Hwpat_meta.Codegen.generate_container cfg)))
  in
  let tests = Test.make_grouped ~name:"hwpat" (t3_tests @ [ codegen_test ]) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] when est > 0.0 ->
        Printf.printf "  %-40s %10.2f us/frame\n" name (est /. 1000.0)
      | _ -> Printf.printf "  %-40s (no estimate)\n" name)
    (List.sort compare rows)

(* CLI: `bench/main.exe` regenerates everything; `--section NAME`
   (repeatable) runs a subset; `--smoke` shrinks the workloads so CI
   can exercise the harness in seconds; `--jobs N` caps the domain
   counts §parscaling sweeps over. *)
let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let smoke = List.mem "--smoke" args in
  let gate = List.mem "--gate-speedup" args in
  let max_jobs = ref 4 in
  let rec chosen = function
    | "--section" :: name :: rest -> name :: chosen rest
    | "--smoke" :: rest -> chosen rest
    | "--gate-speedup" :: rest -> chosen rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j -> max_jobs := j
      | None ->
        Printf.eprintf "--jobs expects an integer, got %s\n" n;
        exit 2);
      chosen rest
    | arg :: _ ->
      Printf.eprintf
        "unknown argument %s (try --smoke, --section NAME, --jobs N, \
         --gate-speedup)\n"
        arg;
      exit 2
    | [] -> []
  in
  let chosen = chosen args in
  let sections =
    [
      ("table1", table1);
      ("table2", table2);
      ("figure2", figure2);
      ("figures45", figures_4_5);
      ("table3", table3);
      ("throughput", throughput);
      ("designspace", design_space_section);
      ("pruning", ablation_pruning);
      ("width", ablation_width);
      ("faultcoverage", faultcoverage);
      ("simthroughput", fun () -> sim_throughput ~smoke ());
      ("parscaling", fun () -> parscaling ~smoke ~max_jobs:!max_jobs ~gate ());
      ("batchsim", fun () -> batchsim ~smoke ~gate ());
      ("prove", fun () -> prove_section ~smoke ~max_jobs:!max_jobs ~gate ());
      ("obsoverhead", fun () -> obsoverhead ~smoke ());
      ("resilience", fun () -> resilience ~smoke ());
      ("serve", fun () -> serve_section ~smoke ~gate ());
      ("bechamel", bechamel_section);
    ]
  in
  let to_run = if chosen = [] then List.map fst sections else chosen in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown section %s (known: %s)\n" name
          (String.concat ", " (List.map fst sections));
        exit 2)
    to_run;
  if chosen = [] then begin
    banner "done";
    print_endline
      "All tables and figures regenerated. See EXPERIMENTS.md for the\n\
       paper-vs-measured record."
  end
