(* hwpat — command line front-end to the library.

   Subcommands:
     generate   emit VHDL for a generated container (and its iterator)
     simulate   run one of the paper's designs on a synthetic frame
     report     resource estimates: the Table 3 comparison
     sweep      design-space characterisation (§3.4)
     tables     print the capability tables and the pattern catalog
     emit       netlist back-ends: VHDL/Verilog for a whole design *)

open Cmdliner

let kind_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "stack" -> Ok Hwpat_meta.Metamodel.Stack
    | "queue" -> Ok Hwpat_meta.Metamodel.Queue
    | "rbuffer" | "read-buffer" -> Ok Hwpat_meta.Metamodel.Read_buffer
    | "wbuffer" | "write-buffer" -> Ok Hwpat_meta.Metamodel.Write_buffer
    | "vector" -> Ok Hwpat_meta.Metamodel.Vector
    | "assoc" | "assoc-array" -> Ok Hwpat_meta.Metamodel.Assoc_array
    | other -> Error (`Msg (Printf.sprintf "unknown container %S" other))
  in
  let print fmt k =
    Format.pp_print_string fmt (Hwpat_meta.Metamodel.container_name k)
  in
  Arg.conv (parse, print)

let target_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "fifo" -> Ok Hwpat_meta.Metamodel.Fifo_core
    | "lifo" -> Ok Hwpat_meta.Metamodel.Lifo_core
    | "bram" -> Ok Hwpat_meta.Metamodel.Block_ram
    | "sram" -> Ok Hwpat_meta.Metamodel.Ext_sram
    | "linebuf" | "linebuf3" -> Ok Hwpat_meta.Metamodel.Line_buffer3
    | other -> Error (`Msg (Printf.sprintf "unknown target %S" other))
  in
  let print fmt t = Format.pp_print_string fmt (Hwpat_meta.Metamodel.target_name t) in
  Arg.conv (parse, print)

(* --- generate ---------------------------------------------------------- *)

let generate kind target width depth bus parity op_timeout iterator out =
  let cfg =
    try
      Hwpat_meta.Config.make ~instance_name:"gen" ~kind ~target ~elem_width:width
        ~depth ?bus_width:bus ~parity ?op_timeout ()
    with Invalid_argument msg ->
      prerr_endline ("hwpat: " ^ msg);
      exit 2
  in
  let text =
    if iterator then Hwpat_meta.Codegen.generate_iterator cfg
    else Hwpat_meta.Codegen.generate_container cfg
  in
  let issues = Hwpat_meta.Vhdl_lint.check text in
  (match out with
  | None -> print_string text
  | Some path ->
    Hwpat_rtl.Util.write_file path text;
    Printf.printf "wrote %s\n" path);
  if issues <> [] then begin
    List.iter
      (fun i -> Format.eprintf "lint: %a@." Hwpat_meta.Vhdl_lint.pp_issue i)
      issues;
    exit 1
  end

let generate_cmd =
  let kind =
    Arg.(
      required
      & opt (some kind_conv) None
      & info [ "container"; "c" ] ~docv:"KIND"
          ~doc:"Container kind: stack, queue, rbuffer, wbuffer, vector, assoc.")
  in
  let target =
    Arg.(
      required
      & opt (some target_conv) None
      & info [ "target"; "t" ] ~docv:"TARGET"
          ~doc:"Physical target: fifo, lifo, bram, sram, linebuf3.")
  in
  let width =
    Arg.(value & opt int 8 & info [ "width"; "w" ] ~doc:"Element width in bits.")
  in
  let depth =
    Arg.(value & opt int 512 & info [ "depth"; "d" ] ~doc:"Capacity in elements.")
  in
  let bus =
    Arg.(
      value
      & opt (some int) None
      & info [ "bus" ] ~doc:"Physical bus width (defaults to the element width).")
  in
  let parity =
    Arg.(
      value & flag
      & info [ "parity" ]
          ~doc:"Protect the storage with a parity bit and an err output.")
  in
  let op_timeout =
    Arg.(
      value
      & opt (some int) None
      & info [ "op-timeout" ] ~docv:"CYCLES"
          ~doc:
            "Add a watchdog that bounds memory handshakes to $(docv) cycles \
             (SRAM targets only).")
  in
  let iterator =
    Arg.(
      value & flag
      & info [ "iterator"; "i" ] ~doc:"Emit the iterator wrapper instead.")
  in
  let out =
    Arg.(
      value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate VHDL for a container or iterator")
    Term.(
      const generate $ kind $ target $ width $ depth $ bus $ parity $ op_timeout
      $ iterator $ out)

(* --- package -------------------------------------------------------------- *)

let package out =
  let mk instance_name kind target =
    Hwpat_meta.Config.make ~instance_name ~kind ~target ~elem_width:8 ~depth:512 ()
  in
  let open Hwpat_meta.Metamodel in
  let configs =
    [
      mk "rbuffer" Read_buffer Fifo_core;
      mk "rbuffer" Read_buffer Ext_sram;
      mk "wbuffer" Write_buffer Fifo_core;
      mk "wbuffer" Write_buffer Ext_sram;
      mk "queue" Queue Fifo_core;
      mk "queue" Queue Block_ram;
      mk "stack" Stack Lifo_core;
      mk "vector" Vector Block_ram;
      mk "assoc" Assoc_array Block_ram;
    ]
  in
  let text =
    Hwpat_meta.Codegen.generate_package ~name:"basic_components" configs
  in
  match out with
  | None -> print_string text
  | Some path ->
    Hwpat_rtl.Util.write_file path text;
    Printf.printf "wrote %s\n" path

let package_cmd =
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ]) in
  Cmd.v
    (Cmd.info "package"
       ~doc:"Emit the basic-components foundation package (VHDL)")
    Term.(const package $ out)

(* --- design selection shared by simulate/report/emit --------------------
   The catalog itself lives in [Hwpat_core.Designs] so the serve daemon
   dispatches the same designs with the same error wording. *)

let build_design name style ~frame_w ~frame_h =
  Hwpat_core.Designs.build ~design:name ~style ~frame_w ~frame_h

let make_frame pattern w h =
  Hwpat_core.Designs.frame ~pattern ~width:w ~height:h

(* --- observability flags shared by simulate/faultsim/sweep/prove --------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Profile the run and write a Chrome trace-event JSON file to \
           $(docv) (load it in chrome://tracing or Perfetto).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write simulator/solver counters and histograms as JSON to $(docv).")

(* Build the Trace/Metrics handles a command was asked for, run its
   body, and write the output files afterwards.  Commands signal
   partial failure with [exit] (mismatch, silent fault, failed proof),
   which bypasses [Fun.protect]'s finaliser — the [at_exit] hook (with
   the idempotence guard) makes sure the profile still lands on disk on
   those paths; raised exceptions are covered by [Fun.protect] before
   the top-level handler turns them into [exit 2]. *)
let with_obs trace_path metrics_path f =
  let trace =
    match trace_path with
    | None -> Hwpat_obs.Trace.null
    | Some _ -> Hwpat_obs.Trace.create ()
  in
  let metrics =
    match metrics_path with
    | None -> Hwpat_obs.Metrics.null
    | Some _ -> Hwpat_obs.Metrics.create ()
  in
  let flushed = ref false in
  let flush () =
    if not !flushed then begin
      flushed := true;
      Option.iter
        (fun path ->
          Hwpat_obs.Trace.write_file trace path;
          Printf.eprintf "trace written to %s\n%!" path)
        trace_path;
      Option.iter
        (fun path ->
          Hwpat_obs.Metrics.write_file metrics path;
          Printf.eprintf "metrics written to %s\n%!" path)
        metrics_path
    end
  in
  at_exit flush;
  Fun.protect ~finally:flush (fun () -> f ~trace ~metrics)

(* --- simulate ----------------------------------------------------------- *)

let simulate design style width height pattern show vcd engine trace_path
    metrics_path =
  let engine = Hwpat_core.Designs.engine_of_string engine in
  let circuit, flavor = build_design design style ~frame_w:width ~frame_h:height in
  let frame = make_frame pattern width height in
  let out_w, out_h =
    Hwpat_core.Designs.output_shape flavor ~width ~height
  in
  let reference = Hwpat_core.Designs.reference flavor frame in
  with_obs trace_path metrics_path @@ fun ~trace ~metrics ->
  let r =
    try
      Hwpat_core.Experiment.run_video_system ~trace ~metrics ~engine
        ?vcd_path:vcd circuit ~input:frame ~out_width:out_w ~out_height:out_h
    with Hwpat_core.Experiment.Timeout d ->
      prerr_endline (Hwpat_core.Experiment.describe_timeout d);
      exit 2
  in
  Option.iter (Printf.printf "waveform written to %s\n") vcd;
  Printf.printf "%s on %dx%d %s: %d cycles (%.2f per output pixel)\n"
    (Hwpat_rtl.Circuit.name circuit)
    width height pattern r.Hwpat_core.Experiment.cycles
    r.Hwpat_core.Experiment.cycles_per_pixel;
  let ok = Hwpat_video.Frame.equal r.Hwpat_core.Experiment.output reference in
  Printf.printf "output vs software reference: %s\n"
    (if ok then "bit-exact" else "MISMATCH");
  if show then begin
    print_endline "input:";
    print_string (Hwpat_video.Frame.to_string frame);
    print_endline "output:";
    print_string (Hwpat_video.Frame.to_string r.Hwpat_core.Experiment.output)
  end;
  if not ok then exit 1

let design_arg =
  Arg.(
    value
    & opt string "saa2vga-fifo"
    & info [ "design" ] ~doc:"saa2vga-fifo, saa2vga-sram, blur or sobel.")

let style_arg =
  Arg.(value & opt string "pattern" & info [ "style" ] ~doc:"pattern or custom.")

let simulate_cmd =
  let width = Arg.(value & opt int 16 & info [ "frame-width" ]) in
  let height = Arg.(value & opt int 16 & info [ "frame-height" ]) in
  let pattern =
    Arg.(
      value & opt string "gradient"
      & info [ "pattern" ] ~doc:"gradient, checker, random or bars.")
  in
  let show = Arg.(value & flag & info [ "show" ] ~doc:"Print ASCII frames.") in
  let vcd =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE" ~doc:"Dump a VCD waveform of the run.")
  in
  let engine =
    Arg.(
      value & opt string "compiled"
      & info [ "engine" ] ~doc:"Simulation engine: compiled or reference.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a design on a synthetic frame")
    Term.(
      const simulate $ design_arg $ style_arg $ width $ height $ pattern $ show
      $ vcd $ engine $ trace_arg $ metrics_arg)

(* --- report ------------------------------------------------------------- *)

let report frame_size =
  let rows =
    Hwpat_core.Experiment.table3 ~frame_width:frame_size ~frame_height:frame_size
      ()
  in
  print_string (Hwpat_core.Experiment.render_table3 rows)

let report_cmd =
  let frame_size =
    Arg.(value & opt int 16 & info [ "frame-size" ] ~doc:"Test frame edge length.")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Resource comparison (Table 3)")
    Term.(const report $ frame_size)

(* --- jobs flag shared by sweep/faultsim ---------------------------------- *)

(* Default: one domain per recommended core, clamped; explicit values
   are clamped into [1, Parallel.max_jobs] rather than rejected. *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Shard the work across $(docv) domains (default: the \
           recommended domain count for this machine).")

let resolve_jobs = function
  | Some j -> Hwpat_core.Parallel.clamp_jobs j
  | None -> Hwpat_core.Parallel.default_jobs ()

(* --- resilience flags shared by sweep/faultsim/prove --------------------- *)

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Journal each completed shard to $(docv) as it finishes (crash-safe \
           append-only JSONL), so an interrupted campaign can be continued \
           with $(b,--resume).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Skip shards already recorded in the $(b,--checkpoint) journal and \
           replay their recorded results; the final summary is byte-identical \
           to an uninterrupted run. Errors out if the journal was written by \
           a different campaign configuration.")

let shard_timeout_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "shard-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-shard wall-clock watchdog: a shard still running after \
           $(docv) seconds is abandoned, retried ($(b,--retries)), and \
           finally reported as unfinished instead of hanging the campaign. \
           0 disables the watchdog.")

let retries_arg =
  Arg.(
    value
    & opt int Hwpat_core.Supervise.default_policy.Hwpat_core.Supervise.retries
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry a timed-out or transiently failed shard up to $(docv) times \
           (deterministic exponential backoff) before reporting it \
           unfinished.")

let resolve_resilience ~checkpoint ~resume ~retries ~shard_timeout =
  if resume && checkpoint = None then begin
    prerr_endline "hwpat: --resume requires --checkpoint";
    exit 2
  end;
  if retries < 0 then begin
    prerr_endline "hwpat: --retries must be non-negative";
    exit 2
  end;
  if shard_timeout < 0.0 then begin
    prerr_endline "hwpat: --shard-timeout must be non-negative";
    exit 2
  end;
  {
    Hwpat_core.Supervise.default_policy with
    Hwpat_core.Supervise.retries;
    shard_timeout_s = shard_timeout;
  }

(* First ^C: cooperative shutdown — workers stop claiming shards,
   in-flight shards finish, the checkpoint journal and --trace/--metrics
   files are flushed, and the command prints its partial summary before
   exiting 130.  A second ^C restores the default handler's immediate
   death for runs that refuse to wind down. *)
let with_sigint f =
  let cancel = Hwpat_core.Parallel.token () in
  let previous =
    Sys.signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           Hwpat_core.Parallel.cancel cancel;
           Sys.set_signal Sys.sigint Sys.Signal_default))
  in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigint previous)
    (fun () -> f cancel)

let exit_interrupted ~checkpoint =
  prerr_endline
    (match checkpoint with
    | Some path ->
      Printf.sprintf
        "hwpat: interrupted — partial results above; continue with --resume \
         --checkpoint %s"
        path
    | None -> "hwpat: interrupted — partial results above");
  exit 130

(* --- sweep --------------------------------------------------------------- *)

let sweep max_brams max_cycles jobs checkpoint resume retries shard_timeout
    trace_path metrics_path =
  let policy = resolve_resilience ~checkpoint ~resume ~retries ~shard_timeout in
  with_obs trace_path metrics_path @@ fun ~trace ~metrics ->
  with_sigint @@ fun cancel ->
  let candidates =
    Hwpat_core.Characterize.sweep ~trace ~metrics ~jobs:(resolve_jobs jobs)
      ~policy ~cancel ?checkpoint ~resume ()
  in
  if Hwpat_obs.Metrics.enabled metrics then begin
    Hwpat_obs.Metrics.incr metrics ~by:(List.length candidates) "sweep.points";
    Hwpat_obs.Metrics.incr metrics
      ~by:
        (List.length (Hwpat_synthesis.Design_space.unmeasurable candidates))
      "sweep.unmeasurable"
  end;
  print_endline (Hwpat_synthesis.Design_space.to_table candidates);
  let constraints =
    {
      Hwpat_synthesis.Design_space.no_constraints with
      Hwpat_synthesis.Design_space.max_brams;
      max_access_cycles = max_cycles;
    }
  in
  print_endline "";
  print_endline (Hwpat_core.Characterize.region_report ~constraints candidates);
  if Hwpat_core.Parallel.cancelled cancel then exit_interrupted ~checkpoint

let sweep_cmd =
  let max_brams =
    Arg.(value & opt (some int) None & info [ "max-brams" ] ~doc:"Constraint.")
  in
  let max_cycles =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-access-cycles" ] ~doc:"Constraint.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Characterise the container design space")
    Term.(
      const sweep $ max_brams $ max_cycles $ jobs_arg $ checkpoint_arg
      $ resume_arg $ retries_arg $ shard_timeout_arg $ trace_arg $ metrics_arg)

(* --- faultsim -------------------------------------------------------------- *)

let faultsim design seed faults frame_size overhead batch lanes jobs checkpoint
    resume retries shard_timeout trace_path metrics_path =
  if faults < 0 then begin
    prerr_endline "hwpat: --faults must be non-negative";
    exit 2
  end;
  if frame_size < 1 then begin
    prerr_endline "hwpat: --frame-size must be at least 1";
    exit 2
  end;
  if lanes < 1 || lanes > Hwpat_rtl.Simbatch.lane_bits then begin
    Printf.eprintf "hwpat: --lanes must be in 1..%d\n"
      Hwpat_rtl.Simbatch.lane_bits;
    exit 2
  end;
  (* The summary is byte-identical either way; batching only changes
     how many simulations carry the campaign. *)
  let lanes = if batch then Some lanes else None in
  let policy = resolve_resilience ~checkpoint ~resume ~retries ~shard_timeout in
  let build = Hwpat_core.Faultsim.find_design design in
  with_obs trace_path metrics_path @@ fun ~trace ~metrics ->
  with_sigint @@ fun cancel ->
  let summary =
    Hwpat_core.Faultsim.run_campaign ~trace ~metrics ?lanes
      ~jobs:(resolve_jobs jobs) ~policy ~cancel ?checkpoint ~resume ~seed
      ~faults ~frame_width:frame_size ~frame_height:frame_size ~build ~design ()
  in
  print_string (Hwpat_core.Faultsim.render summary);
  if overhead then begin
    print_endline "\nprotection hardware overhead (pattern sram vs protected):";
    print_endline Hwpat_synthesis.Resource_report.table3_header;
    print_endline
      (Hwpat_synthesis.Resource_report.table3_row
         (Hwpat_core.Faultsim.protection_overhead ()))
  end;
  if Hwpat_core.Parallel.cancelled cancel then exit_interrupted ~checkpoint;
  if Hwpat_core.Faultsim.count summary Hwpat_core.Faultsim.Silent > 0 then exit 1

let faultsim_cmd =
  let design =
    let names = Hwpat_core.Faultsim.design_names in
    Arg.(
      value
      & opt (enum (List.map (fun n -> (n, n)) names)) "saa2vga_sram_pattern"
      & info [ "design" ]
          ~doc:(Printf.sprintf "One of: %s." (String.concat ", " names)))
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign RNG seed.")
  in
  let faults =
    Arg.(value & opt int 20 & info [ "faults" ] ~doc:"Number of faults to inject.")
  in
  let frame_size =
    Arg.(value & opt int 8 & info [ "frame-size" ] ~doc:"Test frame edge length.")
  in
  let overhead =
    Arg.(
      value & flag
      & info [ "overhead" ]
          ~doc:"Also report the resource cost of the protection hardware.")
  in
  let batch =
    Arg.(
      value & flag
      & info [ "batch" ]
          ~doc:
            "Run the campaign on the bit-parallel batched engine: up to \
             $(b,--lanes) faults share one simulation, one per bit-lane of \
             each machine word. The summary is byte-identical to the scalar \
             engine's; only throughput changes. Composes with $(b,--jobs) \
             and $(b,--checkpoint)/$(b,--resume).")
  in
  let lanes =
    Arg.(
      value
      & opt int Hwpat_rtl.Simbatch.lane_bits
      & info [ "lanes" ] ~docv:"N"
          ~doc:
            "Faults per batched simulation (1..64); only meaningful with \
             $(b,--batch).")
  in
  Cmd.v
    (Cmd.info "faultsim"
       ~doc:
         "Run a seeded fault-injection campaign with runtime monitors \
          attached; exits non-zero if any fault goes silent")
    Term.(
      const faultsim $ design $ seed $ faults $ frame_size $ overhead $ batch
      $ lanes $ jobs_arg $ checkpoint_arg $ resume_arg $ retries_arg
      $ shard_timeout_arg $ trace_arg $ metrics_arg)

(* --- prove ----------------------------------------------------------------- *)

(* CONFLICTS or CONFLICTS/PROPAGATIONS; 0 means unlimited on that
   axis, mirroring {!Hwpat_formal.Solver.budget}. *)
let budget_conv =
  let parse s =
    let budget c p =
      if c < 0 || p < 0 then
        Error (`Msg "solver budget components must be non-negative")
      else
        Ok
          {
            Hwpat_formal.Solver.max_conflicts = c;
            Hwpat_formal.Solver.max_propagations = p;
          }
    in
    match String.index_opt s '/' with
    | None -> (
      match int_of_string_opt s with
      | Some c -> budget c 0
      | None ->
        Error
          (`Msg
            (Printf.sprintf
               "invalid solver budget %S (expected CONFLICTS or \
                CONFLICTS/PROPAGATIONS)"
               s)))
    | Some i -> (
      let conflicts = String.sub s 0 i in
      let props = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt conflicts, int_of_string_opt props) with
      | Some c, Some p -> budget c p
      | _ ->
        Error
          (`Msg
            (Printf.sprintf
               "invalid solver budget %S (expected CONFLICTS or \
                CONFLICTS/PROPAGATIONS)"
               s)))
  in
  let print fmt b =
    Format.fprintf fmt "%d/%d" b.Hwpat_formal.Solver.max_conflicts
      b.Hwpat_formal.Solver.max_propagations
  in
  Arg.conv (parse, print)

let prove smoke jobs json budget portfolio checkpoint resume retries
    shard_timeout trace_path metrics_path =
  let jobs = resolve_jobs jobs in
  let policy = resolve_resilience ~checkpoint ~resume ~retries ~shard_timeout in
  (match portfolio with
  | Some n when n < 2 || n > Hwpat_formal.Portfolio.max_racers ->
    failwith
      (Printf.sprintf "--portfolio must be 2..%d (got %d)"
         Hwpat_formal.Portfolio.max_racers n)
  | _ -> ());
  with_obs trace_path metrics_path @@ fun ~trace ~metrics ->
  with_sigint @@ fun cancel ->
  let results =
    Hwpat_core.Prove.run ~trace ~metrics ~jobs ~policy ~cancel ?checkpoint
      ~resume ~budget ~smoke ?portfolio ()
  in
  print_string (Hwpat_core.Prove.summary results);
  (match json with
  | None -> ()
  | Some path ->
    Hwpat_rtl.Util.write_file path
      (Hwpat_core.Prove.to_json ~jobs ~smoke results);
    Printf.printf "wrote %s\n" path);
  if Hwpat_core.Parallel.cancelled cancel then exit_interrupted ~checkpoint;
  if not (Hwpat_core.Prove.all_ok results) then exit 1

let prove_cmd =
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Run the reduced CI battery: the paper-design monitor proofs at \
             a lower bound plus ten optimizer-equivalence seeds.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the results as JSON to $(docv).")
  in
  let budget =
    Arg.(
      value
      & opt budget_conv Hwpat_formal.Solver.no_budget
      & info [ "solver-budget" ] ~docv:"SPEC"
          ~doc:
            "Cap each SAT solve at $(docv) = CONFLICTS or \
             CONFLICTS/PROPAGATIONS operations (deterministic, not wall \
             clock); obligations that trip the cap report an honest \
             'unknown' verdict instead of running unbounded. 0 means \
             unlimited.")
  in
  let portfolio =
    Arg.(
      value
      & opt ~vopt:(Some 3) (some int) None
      & info [ "portfolio" ] ~docv:"N"
          ~doc:
            "Race each obligation under $(docv) solver configurations \
             (2..4, default 3 when the flag is given bare) through an \
             escalating ladder of deterministic operation budgets; the \
             first definitive answer wins, ties broken by configuration \
             order, so results are identical across runs and $(b,--jobs) \
             settings.")
  in
  Cmd.v
    (Cmd.info "prove"
       ~doc:
         "Discharge the formal proof battery: protocol-monitor BMC on the \
          paper designs, SAT equivalence of optimised and pruned variants; \
          exits non-zero if any obligation fails or is unknown")
    Term.(
      const prove $ smoke $ jobs_arg $ json $ budget $ portfolio
      $ checkpoint_arg $ resume_arg $ retries_arg $ shard_timeout_arg
      $ trace_arg $ metrics_arg)

(* --- serve ----------------------------------------------------------------- *)

let serve socket jobs campaign_jobs cache_size max_inflight queue_bound
    max_request_bytes trace_path metrics_path =
  if cache_size < 0 then begin
    prerr_endline "hwpat: --cache-size must be non-negative";
    exit 2
  end;
  if max_inflight < 1 || queue_bound < 1 then begin
    prerr_endline "hwpat: --max-inflight and --queue-bound must be positive";
    exit 2
  end;
  if max_request_bytes < 256 then begin
    prerr_endline "hwpat: --max-request-bytes must be at least 256";
    exit 2
  end;
  with_obs trace_path metrics_path @@ fun ~trace ~metrics ->
  let config =
    {
      Hwpat_serve.Server.jobs = resolve_jobs jobs;
      campaign_jobs = Hwpat_core.Parallel.clamp_jobs campaign_jobs;
      cache_size;
      max_inflight;
      queue_bound;
      max_request_bytes;
      trace;
      metrics;
    }
  in
  let server = Hwpat_serve.Server.create config in
  (* First ^C: stop intake, drain in-flight requests, flush the
     --trace/--metrics files and exit 0.  A second ^C kills. *)
  let previous =
    Sys.signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           Hwpat_serve.Server.stop server;
           Sys.set_signal Sys.sigint Sys.Signal_default))
  in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigint previous)
    (fun () ->
      match socket with
      | None -> Hwpat_serve.Server.run_stdio server
      | Some path ->
        Printf.eprintf "hwpat: serving on %s\n%!" path;
        Hwpat_serve.Server.run_socket server ~path)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix domain socket at $(docv) instead of serving \
             stdin/stdout.")
  in
  let campaign_jobs =
    Arg.(
      value & opt int 1
      & info [ "campaign-jobs" ] ~docv:"N"
          ~doc:
            "Default shard count for campaigns run inside one request \
             (faultsim, sweep, prove); a request's own $(b,jobs) param \
             overrides it.")
  in
  let cache_size =
    Arg.(
      value & opt int 32
      & info [ "cache-size" ] ~docv:"N"
          ~doc:
            "LRU capacity of each artifact cache (elaborated circuits, \
             compiled simulation plans, result payloads). 0 disables \
             caching.")
  in
  let max_inflight =
    Arg.(
      value & opt int 64
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission limit: total requests queued or executing before new \
             ones are rejected with an $(i,overloaded) error.")
  in
  let queue_bound =
    Arg.(
      value & opt int 32
      & info [ "queue-bound" ] ~docv:"N"
          ~doc:"Admission limit on queued (not yet executing) requests.")
  in
  let max_request_bytes =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-request-bytes" ] ~docv:"BYTES"
          ~doc:
            "Longest accepted request line; longer ones are answered with an \
             $(i,oversized) error and discarded unread.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent design-service daemon: line-delimited JSON \
          requests over stdio or a Unix socket, dispatched concurrently \
          with netlist/plan caching; see the protocol notes in DESIGN.md")
    Term.(
      const serve $ socket $ jobs_arg $ campaign_jobs $ cache_size
      $ max_inflight $ queue_bound $ max_request_bytes $ trace_arg
      $ metrics_arg)

(* --- tables --------------------------------------------------------------- *)

let tables () =
  print_endline "Table 1 — common containers:\n";
  print_endline Hwpat_meta.Metamodel.table1;
  print_endline "\nTable 2 — iterator operations:\n";
  print_endline Hwpat_meta.Metamodel.table2;
  print_endline "\nPattern catalog:\n";
  List.iter
    (fun p -> print_endline (Hwpat_core.Pattern.describe p))
    Hwpat_core.Pattern.catalog

let tables_cmd =
  Cmd.v
    (Cmd.info "tables" ~doc:"Print the capability tables and pattern catalog")
    Term.(const tables $ const ())

(* --- emit ------------------------------------------------------------------ *)

let emit design style lang optimize out =
  let circuit, _ = build_design design style ~frame_w:16 ~frame_h:16 in
  let circuit =
    if optimize then Hwpat_rtl.Optimize.circuit circuit else circuit
  in
  let text =
    match String.lowercase_ascii lang with
    | "vhdl" -> Hwpat_rtl.Vhdl.to_string circuit
    | "verilog" -> Hwpat_rtl.Verilog.to_string circuit
    | "dot" -> Hwpat_rtl.Dot.to_string circuit
    | other ->
      failwith
        (Printf.sprintf "unknown language %S (valid: vhdl, verilog, dot)" other)
  in
  match out with
  | None -> print_string text
  | Some path ->
    Hwpat_rtl.Util.write_file path text;
    Printf.printf "wrote %s\n" path

let emit_cmd =
  let lang =
    Arg.(value & opt string "vhdl" & info [ "lang" ] ~doc:"vhdl, verilog or dot.")
  in
  let optimize =
    Arg.(value & flag & info [ "optimize" ] ~doc:"Run constant propagation first.")
  in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ]) in
  Cmd.v
    (Cmd.info "emit" ~doc:"Emit a whole design through a netlist back-end")
    Term.(const emit $ design_arg $ style_arg $ lang $ optimize $ out)

let subcommands =
  [ generate_cmd; simulate_cmd; report_cmd; sweep_cmd; tables_cmd;
    emit_cmd; package_cmd; faultsim_cmd; prove_cmd; serve_cmd ]

(* One-line summaries for the bare `hwpat` listing, in the order the
   subcommands are registered above. *)
let subcommand_summaries =
  [
    ("generate", "emit VHDL for a generated container or iterator");
    ("simulate", "run a paper design on a synthetic frame");
    ("report", "resource estimates: the Table 3 comparison");
    ("sweep", "characterise the container design space");
    ("tables", "print the capability tables and pattern catalog");
    ("emit", "emit a whole design through a netlist back-end");
    ("package", "emit the basic-components foundation package");
    ("faultsim", "seeded fault-injection campaign with runtime monitors");
    ("prove", "discharge the formal proof battery (BMC + equivalence)");
    ("serve", "persistent design-service daemon (JSON over stdio/socket)");
  ]

(* Bare `hwpat` prints a one-line summary per subcommand instead of
   cmdliner's manual page, so the tool is discoverable from a plain
   invocation. *)
let default_term =
  let list_commands () =
    Printf.printf "hwpat %s - hardware design patterns toolkit\n\n"
      Version.version;
    print_endline "Subcommands:";
    List.iter
      (fun (name, doc) -> Printf.printf "  %-10s %s\n" name doc)
      subcommand_summaries;
    print_endline "\nRun 'hwpat COMMAND --help' for details."
  in
  Term.(const list_commands $ const ())

let () =
  let info =
    Cmd.info "hwpat" ~version:Version.version
      ~doc:"Hardware design patterns: the Iterator pattern for hardware"
  in
  (* User errors (unknown design/style/engine/language/pattern) are
     raised as [Failure]/[Invalid_argument] deep in the command bodies;
     without [~catch:false] cmdliner would print them as uncaught
     exceptions with a backtrace and exit 125.  Turn them into a
     one-line diagnostic and the conventional usage-error exit code. *)
  match
    Cmd.eval ~catch:false (Cmd.group ~default:default_term info subcommands)
  with
  | code -> exit code
  | exception Hwpat_core.Journal.Config_mismatch { path; expected; found } ->
    Printf.eprintf
      "hwpat: checkpoint %s was written by a different campaign\n\
      \  expected: %s\n\
      \  found:    %s\n\
       Pass a fresh --checkpoint path, or drop --resume to overwrite it.\n"
      path expected found;
    exit 2
  | exception (Failure msg | Invalid_argument msg) ->
    prerr_endline ("hwpat: " ^ msg);
    exit 2
