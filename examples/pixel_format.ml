(* §3.3's pixel-format change: switching from 8-bit greyscale to 24-bit
   RGB pixels.

   Two alternatives, exactly as the paper lays them out:
   1. a 24-bit data bus: regenerate containers and iterators with the
      24-bit pixel as the base type — nothing else changes;
   2. an 8-bit data bus: keep 8-bit containers and regenerate the
      iterators to "perform three consecutive container reads/writes to
      get/set the whole pixel" (the multi-word iterator).

   In both cases the copy algorithm is byte-for-byte the same FSM.

   Run with: dune exec examples/pixel_format.exe *)

open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_iterators
open Hwpat_algorithms
open Hwpat_video

(* Alternative 1: wide bus — containers carry whole pixels. *)
let wide_bus_circuit () =
  let copy = Copy.create ~name:"copy" ~width:24 () in
  let src_it, src_put_ack =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let q =
          Queue_c.over_fifo ~name:"src" ~depth:16 ~width:24
            {
              Container_intf.get_req;
              put_req = input "put_req" 1;
              put_data = input "put_data" 24;
            }
        in
        (q, q.Container_intf.put_ack))
      copy.Transform.src_driver
  in
  let dst =
    Queue_c.over_fifo ~name:"dst" ~depth:16 ~width:24
      {
        Container_intf.get_req = input "get_req" 1;
        put_req = Seq_iterator.fused_put_req copy.Transform.dst_driver;
        put_data = copy.Transform.dst_driver.Iterator_intf.write_data;
      }
  in
  let dst_it = Seq_iterator.output dst copy.Transform.dst_driver in
  copy.Transform.connect ~src:src_it ~dst:dst_it;
  Circuit.create_exn ~name:"rgb_wide"
    [
      ("put_ack", src_put_ack);
      ("get_ack", dst.Container_intf.get_ack);
      ("get_data", dst.Container_intf.get_data);
    ]

(* Alternative 2: 8-bit bus — multi-word iterators do 3 accesses per
   pixel over byte-wide containers. The testbench still exchanges whole
   24-bit pixels: the width adaptation is wholly inside the iterators. *)
let narrow_bus_circuit () =
  let copy = Copy.create ~name:"copy" ~width:24 () in
  (* Source: testbench pushes *bytes* (the video bus is 8 bits wide);
     the input iterator reassembles pixels. *)
  let src_q_ref = ref None in
  let src_it, () =
    Multi_word_iterator.input ~name:"pxin" ~elem_width:24 ~bus_width:8
      ~build:(fun ~get_req ->
        let q =
          Queue_c.over_fifo ~name:"src" ~depth:64 ~width:8
            {
              Container_intf.get_req;
              put_req = input "put_req" 1;
              put_data = input "put_data" 8;
            }
        in
        src_q_ref := Some q;
        (q, ()))
      copy.Transform.src_driver
  in
  (* Sink: the output iterator splits pixels into bytes. *)
  let dst_q_ref = ref None in
  let dst_it, () =
    Multi_word_iterator.output ~name:"pxout" ~elem_width:24 ~bus_width:8
      ~build:(fun ~put_req ~put_data ->
        let q =
          Queue_c.over_fifo ~name:"dst" ~depth:64 ~width:8
            {
              Container_intf.get_req = input "get_req" 1;
              put_req;
              put_data;
            }
        in
        dst_q_ref := Some q;
        (q, ()))
      copy.Transform.dst_driver
  in
  copy.Transform.connect ~src:src_it ~dst:dst_it;
  let src_q = Option.get !src_q_ref and dst_q = Option.get !dst_q_ref in
  Circuit.create_exn ~name:"rgb_narrow"
    [
      ("put_ack", src_q.Container_intf.put_ack);
      ("get_ack", dst_q.Container_intf.get_ack);
      ("get_data", dst_q.Container_intf.get_data);
    ]

(* Testbench helpers over the put/get ports. *)
let feed sim ~width v =
  Cyclesim.in_port sim "put_req" := Bits.one 1;
  Cyclesim.in_port sim "put_data" := Bits.of_int ~width v;
  let rec wait n =
    if n > 500 then failwith "put stuck";
    Cyclesim.cycle sim;
    if not (Bits.to_bool !(Cyclesim.out_port sim "put_ack")) then wait (n + 1)
  in
  wait 0;
  Cyclesim.in_port sim "put_req" := Bits.zero 1;
  Cyclesim.cycle sim

let drain sim =
  Cyclesim.in_port sim "get_req" := Bits.one 1;
  let rec wait n =
    if n > 500 then failwith "get stuck";
    Cyclesim.cycle sim;
    if Bits.to_bool !(Cyclesim.out_port sim "get_ack") then
      Bits.to_int !(Cyclesim.out_port sim "get_data")
    else wait (n + 1)
  in
  let v = wait 0 in
  Cyclesim.in_port sim "get_req" := Bits.zero 1;
  Cyclesim.cycle sim;
  v

let quiesce sim =
  Cyclesim.in_port sim "put_req" := Bits.zero 1;
  Cyclesim.in_port sim "get_req" := Bits.zero 1;
  Cyclesim.cycle sim

let pixel_to_bytes px = [ px land 0xFF; (px lsr 8) land 0xFF; (px lsr 16) land 0xFF ]
let bytes_to_pixel b0 b1 b2 = b0 lor (b1 lsl 8) lor (b2 lsl 16)

let () =
  let frame = Pattern.rgb_gradient ~width:6 ~height:4 in
  let pixels = Frame.to_row_major frame in
  Printf.printf "copying %d RGB pixels (24-bit) through both bus widths\n\n"
    (List.length pixels);

  (* Alternative 1. *)
  let sim = Cyclesim.create (wide_bus_circuit ()) in
  quiesce sim;
  List.iter (fun px -> feed sim ~width:24 px) pixels;
  let wide_out = List.map (fun _ -> drain sim) pixels in
  Printf.printf "24-bit bus: %s (containers regenerated at 24 bits)\n"
    (if wide_out = pixels then "pixels intact" else "MISMATCH");

  (* Alternative 2. *)
  let sim = Cyclesim.create (narrow_bus_circuit ()) in
  quiesce sim;
  List.iter (fun px -> List.iter (feed sim ~width:8) (pixel_to_bytes px)) pixels;
  let bytes = List.init (3 * List.length pixels) (fun _ -> drain sim) in
  let rec regroup = function
    | b0 :: b1 :: b2 :: rest -> bytes_to_pixel b0 b1 b2 :: regroup rest
    | [] -> []
    | _ -> failwith "byte stream not a multiple of 3"
  in
  let narrow_out = regroup bytes in
  Printf.printf
    "8-bit bus : %s (multi-word iterators, 3 accesses per pixel)\n\n"
    (if narrow_out = pixels then "pixels intact" else "MISMATCH");

  print_endline
    "The copy algorithm was the same FSM in both runs; only the generated\n\
     iterators changed. That is the §3.3 scenario: 'all these scenarios can\n\
     be considered by the automatic code generator, thus requiring no\n\
     designer intervention'.";

  (* What the width adaptation costs (our A2 ablation). *)
  let cost c = Hwpat_synthesis.Techmap.estimate c in
  let wide = cost (wide_bus_circuit ()) in
  let narrow = cost (narrow_bus_circuit ()) in
  Format.printf "@.24-bit bus datapath: %a@." Hwpat_synthesis.Techmap.pp wide;
  Format.printf "8-bit bus datapath : %a@." Hwpat_synthesis.Techmap.pp narrow
