(* §3.4's design-space characterisation: because containers are
   generated, every (container, target, parameters) point can be built
   and measured automatically, and the "region of interest" under a set
   of constraints falls out as the feasible Pareto front.

   Run with: dune exec examples/design_space.exe *)

open Hwpat_core
open Hwpat_synthesis

let () =
  print_endline "characterising the container design space (this simulates";
  print_endline "a put/get workload on every generated variant)...\n";
  let candidates = Characterize.sweep () in
  print_endline (Design_space.to_table candidates);

  print_endline "\n-- region of interest: no block RAM available --";
  print_endline
    (Characterize.region_report
       ~constraints:{ Design_space.no_constraints with Design_space.max_brams = Some 0 }
       candidates);

  print_endline "\n-- region of interest: at most 3 cycles per access --";
  print_endline
    (Characterize.region_report
       ~constraints:
         { Design_space.no_constraints with Design_space.max_access_cycles = Some 3.0 }
       candidates);

  print_endline "\n-- unconstrained Pareto front --";
  print_endline (Design_space.to_table (Design_space.pareto_front candidates));

  print_endline
    "\nReading the table: FIFO/LIFO cores give the lowest access latency at\n\
     the cost of block RAM; the external SRAM variants free on-chip memory\n\
     and absorb wait states — the paper's 'maximum performance at the\n\
     highest cost' versus 'much smaller, performance depends on memory\n\
     access times' trade-off, regenerated from measurements."
