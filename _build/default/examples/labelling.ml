(* Binary image labelling in hardware — the §5 domain algorithm.

   The labeller is a single FSM that talks to four vector containers
   (previous-row labels, the union-find parent table, a provisional
   frame buffer, and the root→dense-id map) plus the stream iterators.
   Retargeting any of those tables (block RAM → external SRAM) would
   not change the FSM — the same decoupling the copy example shows,
   applied to a far bigger algorithm.

   Run with: dune exec examples/labelling.exe *)

open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_iterators
open Hwpat_algorithms
open Hwpat_video

let image =
  [
    "..##....##......";
    "..##....##..##..";
    "........##..##..";
    "..####..##......";
    "..####..######..";
    "................";
  ]

let frame_of_strings rows =
  let h = List.length rows and w = String.length (List.hd rows) in
  Frame.init ~width:w ~height:h ~depth:8 (fun ~x ~y ->
      if (List.nth rows y).[x] = '#' then 255 else 0)

let () =
  let frame = frame_of_strings image in
  let w = Frame.width frame and h = Frame.height frame in
  Printf.printf "input (%dx%d binary image):\n%s\n" w h (Frame.to_string frame);

  let lbl = Label.create ~width:8 ~label_bits:8 ~image_width:w ~image_height:h () in
  let src_it, put_ack =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let q =
          Queue_c.over_fifo ~depth:256 ~width:8
            {
              Container_intf.get_req;
              put_req = input "put_req" 1;
              put_data = input "put_data" 8;
            }
        in
        (q, q.Container_intf.put_ack))
      lbl.Label.src_driver
  in
  let dst =
    Queue_c.over_fifo ~depth:256 ~width:8
      {
        Container_intf.get_req = input "get_req" 1;
        put_req = Seq_iterator.fused_put_req lbl.Label.dst_driver;
        put_data = lbl.Label.dst_driver.Iterator_intf.write_data;
      }
  in
  let dst_it = Seq_iterator.output dst lbl.Label.dst_driver in
  lbl.Label.connect ~src:src_it ~dst:dst_it;
  let circuit =
    Circuit.create_exn ~name:"labelling"
      [
        ("put_ack", put_ack);
        ("get_ack", dst.Container_intf.get_ack);
        ("get_data", dst.Container_intf.get_data);
        ("labels_used", lbl.Label.labels_used);
      ]
  in
  let sim = Cyclesim.create circuit in
  let set name ~width v = Cyclesim.in_port sim name := Bits.of_int ~width v in
  let out name = Bits.to_int !(Cyclesim.out_port sim name) in
  set "put_req" ~width:1 0;
  set "get_req" ~width:1 0;
  set "put_data" ~width:8 0;
  Cyclesim.cycle sim;
  List.iter
    (fun v ->
      set "put_req" ~width:1 1;
      set "put_data" ~width:8 v;
      let rec wait () =
        Cyclesim.cycle sim;
        if out "put_ack" = 0 then wait ()
      in
      wait ();
      set "put_req" ~width:1 0;
      Cyclesim.cycle sim)
    (Frame.to_row_major frame);
  let labels =
    List.init (w * h) (fun _ ->
        set "get_req" ~width:1 1;
        let rec wait () =
          Cyclesim.cycle sim;
          if out "get_ack" = 0 then wait ()
        in
        wait ();
        let v = out "get_data" in
        set "get_req" ~width:1 0;
        Cyclesim.cycle sim;
        v)
  in
  Cyclesim.settle sim;
  Printf.printf "components found by the hardware: %d\n\n" (out "labels_used");
  print_endline "labelled output (digits = component ids):";
  List.iteri
    (fun i l ->
      print_char (if l = 0 then '.' else Char.chr (Char.code '0' + (l mod 10)));
      if (i + 1) mod w = 0 then print_newline ())
    labels;
  (* Cross-check against the model-domain algorithm. *)
  let model = Hwpat_model.Algorithm.label_frame frame in
  let same = labels = Frame.to_row_major model in
  Printf.printf "\nhardware vs model-domain labelling: %s\n"
    (if same then "identical" else "MISMATCH")
