examples/saa2vga_example.ml: Experiment Format Frame Hwpat_core Hwpat_synthesis Hwpat_video List Pattern Printf Saa2vga
