examples/saa2vga_example.mli:
