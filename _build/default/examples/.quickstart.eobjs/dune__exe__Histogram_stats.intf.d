examples/histogram_stats.mli:
