examples/labelling.mli:
