examples/pixel_format.mli:
