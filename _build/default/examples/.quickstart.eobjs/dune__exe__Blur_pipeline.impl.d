examples/blur_pipeline.ml: Blur_system Experiment Format Frame Hwpat_algorithms Hwpat_core Hwpat_synthesis Hwpat_video Printf Reference
