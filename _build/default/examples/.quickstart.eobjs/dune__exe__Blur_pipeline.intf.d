examples/blur_pipeline.mli:
