examples/quickstart.mli:
