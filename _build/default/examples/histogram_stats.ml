(* Histogram: a domain algorithm from the library extension set (§5
   asks for "specific libraries including common algorithms").

   The histogram kernel exercises the full Table 2 operation set of the
   *random* iterator: for each streamed pixel it performs index (jump
   to the bin), read and write — always through the same request/ack
   handshake the sequential algorithms use.

   Run with: dune exec examples/histogram_stats.exe *)

open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_iterators
open Hwpat_algorithms
open Hwpat_video

let pixel_width = 4 (* 16 grey levels keeps the chart readable *)

let build_system ~count =
  let hist = Histogram.create ~pixel_width ~bin_width:16 ~count () in
  let src_it, put_ack =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let q =
          Queue_c.over_fifo ~depth:64 ~width:pixel_width
            {
              Container_intf.get_req;
              put_req = input "put_req" 1;
              put_data = input "put_data" pixel_width;
            }
        in
        (q, q.Container_intf.put_ack))
      hist.Histogram.src_driver
  in
  (* Testbench inspection port merged into the bins iterator. *)
  let tb_read_req = input "tb_read_req" 1 in
  let tb_index_req = input "tb_index_req" 1 in
  let tb_sel = input "tb_sel" 1 in
  let tb_addr = input "tb_addr" pixel_width in
  let d = hist.Histogram.bin_driver in
  let merged =
    {
      d with
      Iterator_intf.index_req = d.Iterator_intf.index_req |: tb_index_req;
      index_pos = mux2 tb_sel tb_addr d.Iterator_intf.index_pos;
      read_req = d.Iterator_intf.read_req |: tb_read_req;
    }
  in
  let rit =
    Random_iterator.create ~length:(1 lsl pixel_width)
      ~vector:(Vector_c.over_bram ~length:(1 lsl pixel_width) ~width:16)
      merged
  in
  hist.Histogram.connect ~src:src_it ~bins:rit.Random_iterator.iterator;
  let bins_it = rit.Random_iterator.iterator in
  Circuit.create_exn ~name:"histogram"
    [
      ("put_ack", put_ack);
      ("done", hist.Histogram.done_);
      ("bin_read_ack", bins_it.Iterator_intf.read_ack);
      ("bin_read_data", bins_it.Iterator_intf.read_data);
      ("bin_index_ack", bins_it.Iterator_intf.index_ack);
    ]

let () =
  let frame = Pattern.random ~seed:2 ~width:16 ~height:16 ~depth:pixel_width () in
  let pixels = Frame.to_row_major frame in
  let circuit = build_system ~count:(List.length pixels) in
  let sim = Cyclesim.create circuit in
  let set name ~width v = Cyclesim.in_port sim name := Bits.of_int ~width v in
  let out name = Bits.to_int !(Cyclesim.out_port sim name) in
  List.iter
    (fun n -> set n ~width:1 0)
    [ "put_req"; "tb_read_req"; "tb_index_req"; "tb_sel" ];
  set "put_data" ~width:pixel_width 0;
  set "tb_addr" ~width:pixel_width 0;
  Cyclesim.cycle sim;
  (* Stream the frame in. *)
  List.iter
    (fun px ->
      set "put_req" ~width:1 1;
      set "put_data" ~width:pixel_width px;
      let rec wait () =
        Cyclesim.cycle sim;
        if out "put_ack" = 0 then wait ()
      in
      wait ();
      set "put_req" ~width:1 0;
      Cyclesim.cycle sim)
    pixels;
  let rec wait_done n =
    if n > 20000 then failwith "histogram never finished";
    Cyclesim.cycle sim;
    if out "done" = 0 then wait_done (n + 1)
  in
  wait_done 0;
  Printf.printf "histogram of a %dx%d random frame (%d grey levels):\n\n"
    (Frame.width frame) (Frame.height frame) (1 lsl pixel_width);
  (* Read the bins back through the same iterator and chart them. *)
  let read_bin bin =
    set "tb_sel" ~width:1 1;
    set "tb_addr" ~width:pixel_width bin;
    set "tb_index_req" ~width:1 1;
    let rec wait () =
      Cyclesim.cycle sim;
      if out "bin_index_ack" = 0 then wait ()
    in
    wait ();
    set "tb_index_req" ~width:1 0;
    Cyclesim.cycle sim;
    set "tb_read_req" ~width:1 1;
    let rec wait () =
      Cyclesim.cycle sim;
      if out "bin_read_ack" = 0 then wait ()
    in
    wait ();
    let v = out "bin_read_data" in
    set "tb_read_req" ~width:1 0;
    Cyclesim.cycle sim;
    v
  in
  let bins = List.init (1 lsl pixel_width) read_bin in
  (* Cross-check against the model. *)
  let model = Hwpat_model.Container.vector ~length:(1 lsl pixel_width) ~default:0 in
  ignore
    (Hwpat_model.Algorithm.histogram
       ~src:(Hwpat_model.Iterator.input_of_list pixels)
       ~bins:model ~count:(List.length pixels));
  List.iteri
    (fun bin count ->
      let expected = Hwpat_model.Container.read model bin in
      Printf.printf "%2d | %-40s %3d%s\n" bin
        (String.make (min 40 count) '#')
        count
        (if count = expected then "" else
           Printf.sprintf "  (MODEL DISAGREES: %d)" expected))
    bins;
  Printf.printf "\ntotal pixels binned: %d (frame has %d)\n"
    (List.fold_left ( + ) 0 bins)
    (List.length pixels)
