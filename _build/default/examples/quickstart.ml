(* Quickstart: the Iterator pattern in five steps.

   1. Build a container (a queue, here over an on-chip FIFO core).
   2. Wrap it in iterators.
   3. Drive it with a generic algorithm (copy).
   4. Simulate the whole thing cycle by cycle.
   5. Look at the resources and the generated VHDL.

   Run with: dune exec examples/quickstart.exe *)

open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_iterators
open Hwpat_algorithms

let () =
  print_endline "== hwpat quickstart: copy through the Iterator pattern ==\n";

  (* The generic copy algorithm: knows only the iterator interface. *)
  let copy = Copy.create ~width:8 () in

  (* Source container: a queue over a FIFO core, filled by the
     testbench through ordinary put requests. *)
  let src_it, src_put_ack =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let q =
          Queue_c.over_fifo ~name:"src" ~depth:16 ~width:8
            {
              Container_intf.get_req;
              put_req = input "put_req" 1;
              put_data = input "put_data" 8;
            }
        in
        (q, q.Container_intf.put_ack))
      copy.Transform.src_driver
  in

  (* Sink container: another queue, drained by the testbench. *)
  let dst =
    Queue_c.over_fifo ~name:"dst" ~depth:16 ~width:8
      {
        Container_intf.get_req = input "get_req" 1;
        put_req = Seq_iterator.fused_put_req copy.Transform.dst_driver;
        put_data = copy.Transform.dst_driver.Iterator_intf.write_data;
      }
  in
  let dst_it = Seq_iterator.output dst copy.Transform.dst_driver in
  copy.Transform.connect ~src:src_it ~dst:dst_it;

  let circuit =
    Circuit.create_exn ~name:"quickstart"
      [
        ("put_ack", src_put_ack);
        ("get_ack", dst.Container_intf.get_ack);
        ("get_data", dst.Container_intf.get_data);
      ]
  in

  (* Simulate: feed a few bytes, watch them come out the other side. *)
  let sim = Cyclesim.create circuit in
  let set name ~width v = Cyclesim.in_port sim name := Bits.of_int ~width v in
  let out name = Bits.to_int !(Cyclesim.out_port sim name) in
  set "put_req" ~width:1 0;
  set "get_req" ~width:1 0;
  set "put_data" ~width:8 0;
  Cyclesim.cycle sim;
  let feed v =
    set "put_req" ~width:1 1;
    set "put_data" ~width:8 v;
    let rec wait () =
      Cyclesim.cycle sim;
      if out "put_ack" = 0 then wait ()
    in
    wait ();
    set "put_req" ~width:1 0;
    Cyclesim.cycle sim
  in
  let drain () =
    set "get_req" ~width:1 1;
    let rec wait () =
      Cyclesim.cycle sim;
      if out "get_ack" = 1 then out "get_data" else wait ()
    in
    let v = wait () in
    set "get_req" ~width:1 0;
    Cyclesim.cycle sim;
    v
  in
  let message = [ 0x68; 0x77; 0x70; 0x61; 0x74 ] in
  List.iter feed message;
  let received = List.map (fun _ -> drain ()) message in
  Printf.printf "sent     : %s\n"
    (String.concat " " (List.map (Printf.sprintf "%02x") message));
  Printf.printf "received : %s\n\n"
    (String.concat " " (List.map (Printf.sprintf "%02x") received));

  (* Resources: note that the iterators cost nothing. *)
  let r = Hwpat_synthesis.Techmap.estimate circuit in
  let t = Hwpat_synthesis.Timing.analyze circuit in
  Format.printf "resources: %a@." Hwpat_synthesis.Techmap.pp r;
  Format.printf "timing   : %a@.@." Hwpat_synthesis.Timing.pp t;

  (* And the paper's artefact: generated VHDL for this container, plus
     its iterator wrapper (Figures 4/5 style). *)
  let cfg =
    Hwpat_meta.Config.make ~instance_name:"src" ~kind:Hwpat_meta.Metamodel.Queue
      ~target:Hwpat_meta.Metamodel.Fifo_core ~elem_width:8 ~depth:16 ()
  in
  print_endline "generated container entity (metaprogramming back-end):";
  print_endline (Hwpat_meta.Codegen.container_entity cfg);
  print_endline "generated iterator (a pure wrapper):";
  print_endline (Hwpat_meta.Codegen.iterator_entity cfg)
