(* The paper's motivating example (Figures 1 and 3): camera -> video
   decoder -> image processing -> VGA coder -> monitor, with the
   processing step being a plain copy.

   Demonstrates the §3.3 "embracing change" scenario: the model (read
   buffer + iterators + copy + write buffer) stays fixed while the
   aggregates' physical implementation switches from on-chip FIFOs to
   external static RAMs — and the output does not change.

   Run with: dune exec examples/saa2vga_example.exe *)

open Hwpat_core
open Hwpat_video

let section title =
  Printf.printf "\n=== %s ===\n" title

let run substrate style frame =
  let circuit = Saa2vga.build ~depth:64 ~substrate ~style () in
  let r =
    Experiment.run_video_system circuit ~input:frame
      ~out_width:(Frame.width frame) ~out_height:(Frame.height frame)
  in
  (circuit, r)

let () =
  let frame = Pattern.checkerboard ~cell:3 ~width:24 ~height:12 ~depth:8 () in
  section "input frame (from the synthetic camera)";
  print_string (Frame.to_string frame);

  section "the model (Figure 3)";
  print_endline
    "video_in -> [rbuffer] -> rbuffer_it -> (copy) -> wbuffer_it -> [wbuffer] -> vga_out";
  print_endline
    "The copy algorithm touches only iterator operations (inc, read, write).";

  section "configuration 1: buffers over on-chip FIFO cores (saa2vga 1)";
  let c1, r1 = run Saa2vga.Fifo Saa2vga.Pattern frame in
  Printf.printf "simulated %d cycles (%.1f per pixel); output %s\n" r1.Experiment.cycles
    r1.Experiment.cycles_per_pixel
    (if Frame.equal r1.Experiment.output frame then "matches the input exactly"
     else "DIFFERS (bug!)");
  let report c = Hwpat_synthesis.Resource_report.of_circuit c in
  Format.printf "%a@." (fun f r -> Hwpat_synthesis.Resource_report.pp f r) (report c1);

  section "configuration 2: same model, buffers over external SRAM (saa2vga 2)";
  let c2, r2 = run Saa2vga.Sram Saa2vga.Pattern frame in
  Printf.printf "simulated %d cycles (%.1f per pixel); output %s\n" r2.Experiment.cycles
    r2.Experiment.cycles_per_pixel
    (if Frame.equal r2.Experiment.output frame then "matches the input exactly"
     else "DIFFERS (bug!)");
  Format.printf "%a@." (fun f r -> Hwpat_synthesis.Resource_report.pp f r) (report c2);

  section "what changed";
  print_endline
    "Only the aggregates' implementation: the algorithm, iterators and model\n\
     are untouched. The FIFO version costs block RAMs and moves a pixel in\n\
     fewer cycles; the SRAM version frees the block RAMs and pays wait\n\
     states per access — the two design-space points of the paper's §4.";

  section "pattern vs custom (Table 3 rows 1-2, at this frame size)";
  let rows =
    List.filter
      (fun r -> r.Experiment.label <> "blur")
      (Experiment.table3 ~frame_width:16 ~frame_height:16 ())
  in
  print_string (Experiment.render_table3 rows);

  section "output frame (to the monitor)";
  print_string (Frame.to_string r2.Experiment.output)
