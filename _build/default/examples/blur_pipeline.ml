(* The paper's third experiment: a 3x3 blur filter between the video
   decoder and the VGA coder, with the read buffer mapped over the
   specialised 3-line buffer ("3 pixels in a column for each access").

   Run with: dune exec examples/blur_pipeline.exe *)

open Hwpat_core
open Hwpat_video

let () =
  let w = 24 and h = 16 in
  (* A frame with a bright cross on a dark background: blurring smears
     the edges visibly in the ASCII rendering. *)
  let frame =
    Frame.init ~width:w ~height:h ~depth:8 (fun ~x ~y ->
        if x = w / 2 || y = h / 2 then 255 else 20)
  in
  Printf.printf "input (%dx%d):\n%s\n" w h (Frame.to_string frame);

  let run style =
    let circuit = Blur_system.build ~image_width:w ~max_rows:h ~style () in
    ( circuit,
      Experiment.run_video_system circuit ~input:frame ~out_width:(w - 2)
        ~out_height:(h - 2) )
  in
  let reference = Reference.blur frame in

  let show style =
    let circuit, r = run style in
    let ok = Frame.equal r.Experiment.output reference in
    Printf.printf "%s: %d cycles (%.1f per output pixel) — %s\n"
      (Blur_system.name ~style) r.Experiment.cycles r.Experiment.cycles_per_pixel
      (if ok then "bit-exact vs software reference" else "MISMATCH");
    let rep = Hwpat_synthesis.Resource_report.of_circuit circuit in
    Format.printf "  %a@." Hwpat_synthesis.Resource_report.pp rep;
    r.Experiment.output
  in
  let out_pattern = show Blur_system.Pattern in
  let _ = show Blur_system.Custom in

  Printf.printf "\nblurred interior (%dx%d):\n%s\n" (w - 2) (h - 2)
    (Frame.to_string out_pattern);
  print_endline
    "The container (line buffer) provides a whole pixel column per access;\n\
     the blur algorithm sees columns through the same iterator handshake as\n\
     any other container — the specialised memory organisation never leaks\n\
     into the algorithm.";

  (* The kernel, for the curious. *)
  let (a, b, c), (d, e, f), (g, hh, i) = Hwpat_algorithms.Blur.kernel in
  Printf.printf "\nkernel (/16):\n  %d %d %d\n  %d %d %d\n  %d %d %d\n" a b c d e
    f g hh i
