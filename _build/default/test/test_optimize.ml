open Hwpat_rtl
open Hwpat_rtl.Signal

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let estimate c = Hwpat_synthesis.Techmap.estimate c

let is_const_out circuit name =
  Signal.is_const (Circuit.find_output circuit name)
  ||
  match Signal.prim (Circuit.find_output circuit name) with
  | Signal.Wire _ -> (
    match Signal.wire_driver (Circuit.find_output circuit name) with
    | Some d -> Signal.is_const d
    | None -> false)
  | _ -> false

let test_constant_folding () =
  let a = of_int ~width:8 3 and b = of_int ~width:8 4 in
  let c =
    Optimize.circuit
      (Circuit.create_exn ~name:"k"
         [
           ("sum", a +: b);
           ("conj", a &: b);
           ("cmp", a <: b);
           ("inv", ~:a);
           ("cat", concat_msb [ a; b ]);
           ("sel", select (concat_msb [ a; b ]) ~high:11 ~low:4);
         ])
  in
  check_int "fully folded" 0 (estimate c).Hwpat_synthesis.Techmap.luts;
  let sim = Cyclesim.create c in
  Cyclesim.settle sim;
  check_int "sum value" 7 (Bits.to_int !(Cyclesim.out_port sim "sum"));
  check_int "sel value" ((3 * 16 + 0) land 255) (Bits.to_int !(Cyclesim.out_port sim "sel"))

let test_identities () =
  let x = input "x" 8 in
  let c =
    Optimize.circuit
      (Circuit.create_exn ~name:"ids"
         [
           ("and0", x &: zero 8);
           ("and1", x &: ones 8);
           ("or0", x |: zero 8);
           ("or1", x |: ones 8);
           ("xor0", x ^: zero 8);
           ("notnot", ~:(~:x));
           ("add0", x +: zero 8);
         ])
  in
  check_int "identities cost nothing" 0 (estimate c).Hwpat_synthesis.Techmap.luts;
  let sim = Cyclesim.create c in
  Cyclesim.in_port sim "x" := Bits.of_int ~width:8 0xA5;
  Cyclesim.settle sim;
  let out name = Bits.to_int !(Cyclesim.out_port sim name) in
  check_int "and0" 0 (out "and0");
  check_int "and1" 0xA5 (out "and1");
  check_int "or0" 0xA5 (out "or0");
  check_int "or1" 0xFF (out "or1");
  check_int "xor0" 0xA5 (out "xor0");
  check_int "notnot" 0xA5 (out "notnot");
  check_int "add0" 0xA5 (out "add0")

let test_mux_folding () =
  let a = input "a" 8 and b = input "b" 8 in
  let c =
    Optimize.circuit
      (Circuit.create_exn ~name:"m"
         [
           ("const_sel", mux (of_int ~width:1 1) [ a; b ]);
           ("same_cases", mux (input "s" 2) [ a; a; a ]);
         ])
  in
  check_int "muxes gone" 0 (estimate c).Hwpat_synthesis.Techmap.luts;
  let sim = Cyclesim.create c in
  Cyclesim.in_port sim "a" := Bits.of_int ~width:8 1;
  Cyclesim.in_port sim "b" := Bits.of_int ~width:8 2;
  Cyclesim.settle sim;
  check_int "selected b" 2 (Bits.to_int !(Cyclesim.out_port sim "const_sel"));
  check_int "same collapses to a" 1
    (Bits.to_int !(Cyclesim.out_port sim "same_cases"))

let test_dead_register_folds () =
  let q = reg ~enable:gnd ~init:(Bits.of_int ~width:8 42) (input "d" 8) in
  let c = Optimize.circuit (Circuit.create_exn ~name:"dead" [ ("q", q) ]) in
  check_int "no ffs left" 0 (estimate c).Hwpat_synthesis.Techmap.ffs;
  check_bool "output is the init constant" true (is_const_out c "q");
  let sim = Cyclesim.create c in
  Cyclesim.settle sim;
  check_int "init value" 42 (Bits.to_int !(Cyclesim.out_port sim "q"))

let test_live_register_survives () =
  let q = reg ~enable:(input "en" 1) (input "d" 8) in
  let c = Optimize.circuit (Circuit.create_exn ~name:"live" [ ("q", q) ]) in
  check_int "register kept" 8 (estimate c).Hwpat_synthesis.Techmap.ffs

let test_unwritten_memory_folds () =
  let m = create_memory ~size:16 ~width:8 () in
  mem_write_port m ~enable:gnd ~addr:(input "wa" 4) ~data:(input "wd" 8);
  let rd = mem_read_async m ~addr:(input "ra" 4) in
  let c = Optimize.circuit (Circuit.create_exn ~name:"nw" [ ("rd", rd) ]) in
  let r = estimate c in
  check_int "memory gone" 0 r.Hwpat_synthesis.Techmap.lutram_luts;
  check_bool "reads constant zero" true (is_const_out c "rd")

let test_feedback_register_preserved () =
  (* A counter optimises to itself (no constants involved) and still
     counts. *)
  let counter = reg_fb ~width:8 (fun q -> q +: one 8) in
  let c = Optimize.circuit (Circuit.create_exn ~name:"cnt" [ ("q", counter) ]) in
  let sim = Cyclesim.create c in
  for _ = 1 to 5 do
    Cyclesim.cycle sim
  done;
  Cyclesim.settle sim;
  check_int "still counts" 5 (Bits.to_int !(Cyclesim.out_port sim "q"))

(* Semantics preservation on a real system: optimised saa2vga produces
   the same frame as the raw netlist. *)
let test_system_equivalence () =
  let open Hwpat_core in
  let open Hwpat_video in
  let frame = Pattern.random ~seed:3 ~width:10 ~height:8 ~depth:8 () in
  List.iter
    (fun (substrate, style) ->
      let raw = Saa2vga.build ~depth:16 ~substrate ~style () in
      let optimized = Optimize.circuit raw in
      let run c =
        (Experiment.run_video_system c ~input:frame ~out_width:10 ~out_height:8)
          .Experiment.output
      in
      if not (Frame.equal (run raw) (run optimized)) then
        Alcotest.failf "%s: optimisation changed behaviour"
          (Saa2vga.name ~substrate ~style);
      (* And it never makes the design bigger. *)
      let r_raw = estimate raw and r_opt = estimate optimized in
      if r_opt.Hwpat_synthesis.Techmap.luts > r_raw.Hwpat_synthesis.Techmap.luts
      then
        Alcotest.failf "%s: optimisation grew the netlist"
          (Saa2vga.name ~substrate ~style))
    Saa2vga.all_variants

(* The A1 ablation at netlist level: a random iterator generated with
   the full Table 2 operation set versus one whose unused operations are
   tied off; optimisation must strip the dead machinery. *)
let test_pruning_via_optimizer () =
  let open Hwpat_containers in
  let open Hwpat_iterators in
  let build ~pruned =
    let driver =
      {
        Iterator_intf.inc_req = input "inc" 1;
        dec_req = (if pruned then gnd else input "dec" 1);
        read_req = input "rd" 1;
        write_req = (if pruned then gnd else input "wr" 1);
        write_data = (if pruned then zero 8 else input "wd" 8);
        index_req = (if pruned then gnd else input "ix" 1);
        index_pos = (if pruned then zero 5 else input "ip" 5);
      }
    in
    let rit =
      Random_iterator.create ~length:16
        ~vector:(Vector_c.over_bram ~length:16 ~width:8)
        driver
    in
    let it = rit.Random_iterator.iterator in
    Optimize.circuit
      (Circuit.create_exn ~name:(if pruned then "pruned" else "full")
         [
           ("read_ack", it.Iterator_intf.read_ack);
           ("read_data", it.Iterator_intf.read_data);
           ("inc_ack", it.Iterator_intf.inc_ack);
         ])
  in
  let full = estimate (build ~pruned:false) in
  let pruned = estimate (build ~pruned:true) in
  check_bool "pruning shrinks LUTs" true
    (pruned.Hwpat_synthesis.Techmap.luts < full.Hwpat_synthesis.Techmap.luts);
  check_bool "pruning shrinks FFs" true
    (pruned.Hwpat_synthesis.Techmap.ffs < full.Hwpat_synthesis.Techmap.ffs)

let () =
  Alcotest.run "optimize"
    [
      ( "folding",
        [
          Alcotest.test_case "constants" `Quick test_constant_folding;
          Alcotest.test_case "identities" `Quick test_identities;
          Alcotest.test_case "muxes" `Quick test_mux_folding;
          Alcotest.test_case "dead register" `Quick test_dead_register_folds;
          Alcotest.test_case "live register survives" `Quick
            test_live_register_survives;
          Alcotest.test_case "unwritten memory" `Quick test_unwritten_memory_folds;
          Alcotest.test_case "feedback preserved" `Quick
            test_feedback_register_preserved;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "systems unchanged" `Slow test_system_equivalence;
          Alcotest.test_case "pruning ablation" `Quick test_pruning_via_optimizer;
        ] );
    ]
