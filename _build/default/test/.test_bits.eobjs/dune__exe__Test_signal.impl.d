test/test_signal.ml: Alcotest Bits Circuit Cyclesim Fsm Hwpat_rtl Int List Option String
