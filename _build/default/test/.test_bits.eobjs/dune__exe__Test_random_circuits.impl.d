test/test_random_circuits.ml: Alcotest Array Bits Circuit Cyclesim Hwpat_rtl Hwpat_synthesis List Netlist_stats Optimize Printf Random String Verilog Vhdl
