test/test_video_model.ml: Alcotest Frame Gen Hwpat_model Hwpat_video List Pattern QCheck QCheck_alcotest Queue Reference String
