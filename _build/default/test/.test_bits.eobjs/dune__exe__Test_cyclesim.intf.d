test/test_cyclesim.mli:
