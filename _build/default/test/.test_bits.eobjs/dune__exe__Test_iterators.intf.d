test/test_iterators.mli:
