test/test_devices.ml: Alcotest Bits Bram Circuit Cyclesim Fifo_core Handshake Hwpat_devices Hwpat_rtl Hwpat_synthesis Lifo_core Line_buffer List Printf Sram Sram_arbiter
