test/test_bits.ml: Alcotest Bits Gen Hwpat_rtl Printf QCheck QCheck_alcotest String
