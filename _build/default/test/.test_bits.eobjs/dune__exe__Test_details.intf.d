test/test_details.mli:
