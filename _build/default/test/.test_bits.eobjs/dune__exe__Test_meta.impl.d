test/test_meta.ml: Alcotest Algorithm_meta Codegen Config Format Hwpat_meta List Metamodel String Vhdl_lint
