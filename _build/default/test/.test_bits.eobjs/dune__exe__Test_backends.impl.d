test/test_backends.ml: Alcotest Bits Circuit Dot Hwpat_rtl List Netlist_stats Printf String Verilog Vhdl
