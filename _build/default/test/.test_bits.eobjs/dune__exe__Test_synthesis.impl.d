test/test_synthesis.ml: Alcotest Bits Board Circuit Cyclesim Design_space Hwpat_rtl Hwpat_synthesis List Power Resource_report String Techmap Timing
