test/test_video_model.mli:
