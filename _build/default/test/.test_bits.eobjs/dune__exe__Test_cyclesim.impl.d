test/test_cyclesim.ml: Alcotest Bits Circuit Cyclesim Hwpat_rtl List Printf String Vcd
