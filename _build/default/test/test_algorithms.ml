open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_iterators
open Hwpat_algorithms
open Hwpat_test_support.Sim_util

let check_int = Alcotest.(check int)


(* Harness: a copy/transform algorithm between two queues, with
   testbench access to the source put side and the sink get side. *)
let copy_between_queues ?limit ~f ~src_build ~dst_build () =
  let xf = Transform.create ?limit ~width:8 ~f () in
  let src_ack = ref None in
  let src_it, () =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let d =
          {
            Container_intf.get_req;
            put_req = input "src_put_req" 1;
            put_data = input "src_put_data" 8;
          }
        in
        let q = src_build d in
        src_ack := Some q.Container_intf.put_ack;
        (q, ()))
      xf.Transform.src_driver
  in
  let dst_q =
    dst_build
      {
        Container_intf.get_req = input "dst_get_req" 1;
        put_req = Seq_iterator.fused_put_req xf.Transform.dst_driver;
        put_data = xf.Transform.dst_driver.Iterator_intf.write_data;
      }
  in
  let dst_it = Seq_iterator.output dst_q xf.Transform.dst_driver in
  xf.Transform.connect ~src:src_it ~dst:dst_it;
  ignore src_it;
  let circuit =
    Circuit.create_exn ~name:"copy_harness"
      [
        ("src_put_ack", Option.get !src_ack);
        ("dst_get_ack", dst_q.Container_intf.get_ack);
        ("dst_get_data", dst_q.Container_intf.get_data);
        ("transferred", xf.Transform.transferred);
        ("running", xf.Transform.running);
      ]
  in
  Cyclesim.create circuit

let feed sim v =
  set sim "src_put_req" ~width:1 1;
  set sim "src_put_data" ~width:8 v;
  let rec wait n =
    if n > 300 then Alcotest.fail "source put stuck";
    Cyclesim.cycle sim;
    if out_int sim "src_put_ack" = 0 then wait (n + 1)
  in
  wait 0;
  set sim "src_put_req" ~width:1 0;
  Cyclesim.cycle sim

let drain sim =
  set sim "dst_get_req" ~width:1 1;
  let rec wait n =
    if n > 300 then Alcotest.fail "sink get stuck";
    Cyclesim.cycle sim;
    if out_int sim "dst_get_ack" = 1 then out_int sim "dst_get_data"
    else wait (n + 1)
  in
  let v = wait 0 in
  set sim "dst_get_req" ~width:1 0;
  Cyclesim.cycle sim;
  v

let queue_targets =
  [
    ("fifo->fifo",
     (fun d -> Queue_c.over_fifo ~name:"srcq" ~depth:16 ~width:8 d),
     fun d -> Queue_c.over_fifo ~name:"dstq" ~depth:16 ~width:8 d);
    ("bram->sram",
     (fun d -> Queue_c.over_bram ~name:"srcq" ~depth:16 ~width:8 d),
     fun d -> Queue_c.over_sram ~name:"dstq" ~depth:16 ~width:8 ~wait_states:1 d);
    ("sram->fifo",
     (fun d -> Queue_c.over_sram ~name:"srcq" ~depth:16 ~width:8 ~wait_states:2 d),
     fun d -> Queue_c.over_fifo ~name:"dstq" ~depth:16 ~width:8 d);
  ]

(* The pattern's core claim: the SAME algorithm FSM works over any
   container/target combination. *)
let test_copy_is_container_agnostic () =
  List.iter
    (fun (tag, src_build, dst_build) ->
      let sim = copy_between_queues ~f:(fun x -> x) ~src_build ~dst_build () in
      set sim "dst_get_req" ~width:1 0;
      set sim "src_put_req" ~width:1 0;
      set sim "src_put_data" ~width:8 0;
      Cyclesim.cycle sim;
      let data = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
      List.iter (feed sim) data;
      let got = List.map (fun _ -> drain sim) data in
      Alcotest.(check (list int)) (tag ^ ": copied in order") data got)
    queue_targets

let test_transform_applies_function () =
  let sim =
    copy_between_queues
      ~f:(fun x -> ~:x)
      ~src_build:(fun d -> Queue_c.over_fifo ~depth:16 ~width:8 d)
      ~dst_build:(fun d -> Queue_c.over_fifo ~depth:16 ~width:8 d)
      ()
  in
  set sim "dst_get_req" ~width:1 0;
  Cyclesim.cycle sim;
  List.iter (feed sim) [ 0; 255; 170 ];
  Alcotest.(check (list int)) "inverted" [ 255; 0; 85 ]
    (List.map (fun _ -> drain sim) [ (); (); () ])

let test_copy_limit_halts () =
  let sim =
    copy_between_queues ~limit:3
      ~f:(fun x -> x)
      ~src_build:(fun d -> Queue_c.over_fifo ~depth:16 ~width:8 d)
      ~dst_build:(fun d -> Queue_c.over_fifo ~depth:16 ~width:8 d)
      ()
  in
  set sim "dst_get_req" ~width:1 0;
  Cyclesim.cycle sim;
  List.iter (feed sim) [ 1; 2; 3; 4; 5 ];
  (* Give the FSM time; only 3 elements may cross. *)
  for _ = 1 to 100 do
    Cyclesim.cycle sim
  done;
  Cyclesim.settle sim;
  check_int "transferred exactly 3" 3 (out_int sim "transferred");
  check_int "halted" 0 (out_int sim "running");
  Alcotest.(check (list int)) "first three crossed" [ 1; 2; 3 ]
    (List.map (fun _ -> drain sim) [ (); (); () ])

(* RTL vs behavioural model equivalence on random streams. *)
let test_copy_rtl_matches_model () =
  let sim =
    copy_between_queues
      ~f:(fun x -> x)
      ~src_build:(fun d -> Queue_c.over_bram ~depth:16 ~width:8 d)
      ~dst_build:(fun d -> Queue_c.over_bram ~depth:16 ~width:8 d)
      ()
  in
  set sim "dst_get_req" ~width:1 0;
  Cyclesim.cycle sim;
  Random.init 11;
  let data = List.init 20 (fun _ -> Random.int 256) in
  (* Model run. *)
  (* The model run loads the whole stream up front, so give the model
     queues room for all of it; the RTL run exercises backpressure. *)
  let src_model = Hwpat_model.Container.queue ~capacity:(List.length data) in
  let dst_model = Hwpat_model.Container.queue ~capacity:(List.length data) in
  List.iter (fun v -> ignore (Hwpat_model.Container.stream_in src_model v)) data;
  let moved =
    Hwpat_model.Algorithm.copy
      ~src:(Hwpat_model.Iterator.input_of_seq src_model)
      ~dst:(Hwpat_model.Iterator.output_of_seq dst_model)
      ~limit:(List.length data)
  in
  check_int "model moved all" (List.length data) moved;
  let model_out =
    List.init moved (fun _ ->
        Option.get (Hwpat_model.Container.stream_out dst_model))
  in
  (* RTL run. *)
  List.iter (feed sim) data;
  let rtl_out = List.map (fun _ -> drain sim) data in
  Alcotest.(check (list int)) "rtl = model" model_out rtl_out

(* --- Fill ------------------------------------------------------------- *)

let test_fill () =
  let fill = Fill.create ~width:8 ~value:(Bits.of_int ~width:8 42) ~count:5 () in
  let q =
    Queue_c.over_fifo ~depth:8 ~width:8
      {
        Container_intf.get_req = input "get_req" 1;
        put_req = Seq_iterator.fused_put_req fill.Fill.dst_driver;
        put_data = fill.Fill.dst_driver.Iterator_intf.write_data;
      }
  in
  let dst_it = Seq_iterator.output q fill.Fill.dst_driver in
  fill.Fill.connect ~dst:dst_it;
  let c =
    Circuit.create_exn ~name:"fill"
      [
        ("get_ack", q.Container_intf.get_ack);
        ("get_data", q.Container_intf.get_data);
        ("done", fill.Fill.done_);
        ("written", fill.Fill.written);
        ("size", q.Container_intf.size);
      ]
  in
  let sim = Cyclesim.create c in
  set sim "get_req" ~width:1 0;
  ignore (cycles_until ~timeout:200 sim "done");
  Cyclesim.settle sim;
  check_int "five written" 5 (out_int sim "written");
  check_int "queue holds them" 5 (out_int sim "size");
  let v, _ = seq_get sim in
  check_int "value" 42 v

(* --- Find ------------------------------------------------------------- *)

let find_harness ~target_value ~data =
  let find =
    Find.create ~width:8 ~target:(of_int ~width:8 target_value)
      ~limit:(List.length data) ()
  in
  let src_it, put_ack =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let q =
          Queue_c.over_fifo ~depth:32 ~width:8
            {
              Container_intf.get_req;
              put_req = input "put_req" 1;
              put_data = input "put_data" 8;
            }
        in
        (q, q.Container_intf.put_ack))
      find.Find.src_driver
  in
  find.Find.connect ~src:src_it;
  let c =
    Circuit.create_exn ~name:"find"
      [
        ("done", find.Find.done_);
        ("found", find.Find.found);
        ("position", find.Find.position);
        ("put_ack", put_ack);
      ]
  in
  let sim = Cyclesim.create c in
  set sim "put_req" ~width:1 0;
  set sim "put_data" ~width:8 0;
  Cyclesim.cycle sim;
  List.iter (fun v -> ignore (seq_put sim ~width:8 v)) data;
  ignore (cycles_until ~timeout:2000 sim "done");
  Cyclesim.settle sim;
  (out_int sim "found", out_int sim "position")

let test_find_hit () =
  let found, position = find_harness ~target_value:9 ~data:[ 3; 1; 9; 4 ] in
  check_int "found" 1 found;
  check_int "at index 2" 2 position

let test_find_miss () =
  let found, _ = find_harness ~target_value:7 ~data:[ 3; 1; 9; 4 ] in
  check_int "not found" 0 found

(* --- Accumulate ------------------------------------------------------- *)

let test_accumulate () =
  let data = [ 10; 20; 30; 40 ] in
  let acc = Accumulate.create ~width:8 ~count:(List.length data) () in
  let src_it, put_ack =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let q =
          Queue_c.over_bram ~depth:8 ~width:8
            {
              Container_intf.get_req;
              put_req = input "put_req" 1;
              put_data = input "put_data" 8;
            }
        in
        (q, q.Container_intf.put_ack))
      acc.Accumulate.src_driver
  in
  acc.Accumulate.connect ~src:src_it;
  let c =
    Circuit.create_exn ~name:"acc"
      [
        ("done", acc.Accumulate.done_);
        ("sum", acc.Accumulate.sum);
        ("put_ack", put_ack);
      ]
  in
  let sim = Cyclesim.create c in
  set sim "put_req" ~width:1 0;
  set sim "put_data" ~width:8 0;
  Cyclesim.cycle sim;
  List.iter (fun v -> ignore (seq_put sim ~width:8 v)) data;
  ignore (cycles_until ~timeout:500 sim "done");
  Cyclesim.settle sim;
  check_int "sum" (List.fold_left ( + ) 0 data) (out_int sim "sum")

(* --- Blur kernel reference -------------------------------------------- *)

let test_blur_reference_pixel () =
  let flat = Array.make_matrix 3 3 100 in
  check_int "flat field is preserved" 100
    (Blur.reference_pixel ~window:flat);
  let impulse = Array.make_matrix 3 3 0 in
  impulse.(1).(1) <- 16;
  check_int "unit impulse x center weight" 4
    (Blur.reference_pixel ~window:impulse);
  let max_w = Array.make_matrix 3 3 255 in
  check_int "no overflow at max" 255 (Blur.reference_pixel ~window:max_w)

let () =
  Alcotest.run "algorithms"
    [
      ( "copy/transform",
        [
          Alcotest.test_case "container agnostic" `Quick
            test_copy_is_container_agnostic;
          Alcotest.test_case "transform applies f" `Quick
            test_transform_applies_function;
          Alcotest.test_case "limit halts" `Quick test_copy_limit_halts;
          Alcotest.test_case "rtl matches model" `Quick test_copy_rtl_matches_model;
        ] );
      ("fill", [ Alcotest.test_case "fill_n" `Quick test_fill ]);
      ( "find",
        [
          Alcotest.test_case "hit" `Quick test_find_hit;
          Alcotest.test_case "miss" `Quick test_find_miss;
        ] );
      ("accumulate", [ Alcotest.test_case "sum" `Quick test_accumulate ]);
      ("blur", [ Alcotest.test_case "reference pixel" `Quick test_blur_reference_pixel ]);
    ]
