open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_devices

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let out_int sim name = Bits.to_int !(Cyclesim.out_port sim name)
let set sim name ~width v = Cyclesim.in_port sim name := Bits.of_int ~width v

(* --- FIFO core ------------------------------------------------------ *)

let fifo_harness ~depth ~width =
  let wr_en = input "wr_en" 1 and rd_en = input "rd_en" 1 in
  let wr_data = input "wr_data" width in
  let fifo = Fifo_core.create ~depth ~width ~wr_en ~wr_data ~rd_en () in
  let circuit =
    Circuit.create_exn ~name:"fifo_harness"
      [
        ("rd_data", fifo.Fifo_core.rd_data);
        ("rd_valid", fifo.Fifo_core.rd_valid);
        ("empty", fifo.Fifo_core.empty);
        ("full", fifo.Fifo_core.full);
        ("count", fifo.Fifo_core.count);
      ]
  in
  Cyclesim.create circuit

let fifo_push sim v =
  set sim "wr_en" ~width:1 1;
  set sim "wr_data" ~width:8 v;
  Cyclesim.cycle sim;
  set sim "wr_en" ~width:1 0

(* Pop one word: assert rd_en for one cycle, collect on the next. *)
let fifo_pop sim =
  set sim "rd_en" ~width:1 1;
  Cyclesim.cycle sim;
  set sim "rd_en" ~width:1 0;
  Cyclesim.cycle sim;
  check_int "rd_valid" 1 (out_int sim "rd_valid");
  out_int sim "rd_data"

let test_fifo_order () =
  let sim = fifo_harness ~depth:8 ~width:8 in
  set sim "rd_en" ~width:1 0;
  set sim "wr_en" ~width:1 0;
  set sim "wr_data" ~width:8 0;
  Cyclesim.cycle sim;
  check_int "initially empty" 1 (out_int sim "empty");
  List.iter (fun v -> fifo_push sim v) [ 11; 22; 33 ];
  Cyclesim.cycle sim;
  check_int "not empty" 0 (out_int sim "empty");
  check_int "count 3" 3 (out_int sim "count");
  check_int "first out" 11 (fifo_pop sim);
  check_int "second out" 22 (fifo_pop sim);
  check_int "third out" 33 (fifo_pop sim);
  Cyclesim.cycle sim;
  check_int "empty again" 1 (out_int sim "empty")

let test_fifo_full () =
  let sim = fifo_harness ~depth:4 ~width:8 in
  set sim "rd_en" ~width:1 0;
  for v = 1 to 4 do
    fifo_push sim v
  done;
  Cyclesim.cycle sim;
  check_int "full" 1 (out_int sim "full");
  (* Push into a full FIFO is dropped. *)
  fifo_push sim 99;
  Cyclesim.cycle sim;
  check_int "count still 4" 4 (out_int sim "count");
  check_int "order preserved" 1 (fifo_pop sim)

let test_fifo_wraparound () =
  let sim = fifo_harness ~depth:4 ~width:8 in
  set sim "rd_en" ~width:1 0;
  (* Fill and drain twice the depth to exercise pointer wrap. *)
  for round = 0 to 1 do
    for v = 1 to 4 do
      fifo_push sim (v + (round * 10))
    done;
    for v = 1 to 4 do
      check_int "wrap order" (v + (round * 10)) (fifo_pop sim)
    done
  done

let test_fifo_simultaneous_rw () =
  let sim = fifo_harness ~depth:4 ~width:8 in
  set sim "rd_en" ~width:1 0;
  fifo_push sim 5;
  Cyclesim.cycle sim;
  (* Read and write in the same cycle. *)
  set sim "wr_en" ~width:1 1;
  set sim "wr_data" ~width:8 6;
  set sim "rd_en" ~width:1 1;
  Cyclesim.cycle sim;
  set sim "wr_en" ~width:1 0;
  set sim "rd_en" ~width:1 0;
  Cyclesim.cycle sim;
  check_int "popped old head" 5 (out_int sim "rd_data");
  check_int "count stays 1" 1 (out_int sim "count");
  check_int "then the new word" 6 (fifo_pop sim)

let test_fifo_maps_to_bram () =
  let wr_en = input "wr_en" 1 and rd_en = input "rd_en" 1 in
  let wr_data = input "wr_data" 8 in
  let fifo = Fifo_core.create ~depth:512 ~width:8 ~wr_en ~wr_data ~rd_en () in
  let circuit =
    Circuit.create_exn ~name:"fifo512" [ ("rd_data", fifo.Fifo_core.rd_data) ]
  in
  let r = Hwpat_synthesis.Techmap.estimate circuit in
  check_int "one BRAM" 1 r.Hwpat_synthesis.Techmap.brams;
  check_bool "no lutram" true (r.Hwpat_synthesis.Techmap.lutram_luts = 0)

(* --- LIFO core ------------------------------------------------------ *)

let lifo_harness ~depth =
  let push_en = input "push_en" 1 and pop_en = input "pop_en" 1 in
  let push_data = input "push_data" 8 in
  let lifo = Lifo_core.create ~depth ~width:8 ~push_en ~push_data ~pop_en () in
  let circuit =
    Circuit.create_exn ~name:"lifo_harness"
      [
        ("rd_data", lifo.Lifo_core.rd_data);
        ("rd_valid", lifo.Lifo_core.rd_valid);
        ("empty", lifo.Lifo_core.empty);
        ("full", lifo.Lifo_core.full);
        ("count", lifo.Lifo_core.count);
      ]
  in
  Cyclesim.create circuit

let lifo_push sim v =
  set sim "push_en" ~width:1 1;
  set sim "push_data" ~width:8 v;
  Cyclesim.cycle sim;
  set sim "push_en" ~width:1 0

let lifo_pop sim =
  set sim "pop_en" ~width:1 1;
  Cyclesim.cycle sim;
  set sim "pop_en" ~width:1 0;
  Cyclesim.cycle sim;
  check_int "rd_valid" 1 (out_int sim "rd_valid");
  out_int sim "rd_data"

let test_lifo_order () =
  let sim = lifo_harness ~depth:8 in
  set sim "pop_en" ~width:1 0;
  List.iter (fun v -> lifo_push sim v) [ 1; 2; 3 ];
  check_int "lifo pops reversed: 3" 3 (lifo_pop sim);
  check_int "lifo pops reversed: 2" 2 (lifo_pop sim);
  lifo_push sim 9;
  check_int "interleaved push" 9 (lifo_pop sim);
  check_int "original bottom" 1 (lifo_pop sim);
  Cyclesim.cycle sim;
  check_int "empty" 1 (out_int sim "empty")

let test_lifo_full_and_underflow () =
  let sim = lifo_harness ~depth:4 in
  set sim "pop_en" ~width:1 0;
  (* Pop empty stack: no valid pulse. *)
  set sim "pop_en" ~width:1 1;
  Cyclesim.cycle sim;
  set sim "pop_en" ~width:1 0;
  Cyclesim.cycle sim;
  check_int "no pop from empty" 0 (out_int sim "rd_valid");
  for v = 1 to 5 do
    lifo_push sim v
  done;
  Cyclesim.cycle sim;
  check_int "full at 4" 1 (out_int sim "full");
  check_int "overflow dropped" 4 (lifo_pop sim)

(* --- SRAM ----------------------------------------------------------- *)

let sram_harness ~wait_states =
  let req = input "req" 1 and we = input "we" 1 in
  let addr = input "addr" 8 and wr_data = input "wr_data" 16 in
  let sram = Sram.create ~words:256 ~width:16 ~wait_states ~req ~we ~addr ~wr_data () in
  let circuit =
    Circuit.create_exn ~name:"sram_harness"
      [
        ("ack", sram.Sram.ack);
        ("rd_data", sram.Sram.rd_data);
        ("busy", sram.Sram.busy);
      ]
  in
  Cyclesim.create circuit

(* Issue one access; returns (latency_cycles, rd_data_at_ack). *)
let sram_access sim ~we ~addr ~data =
  set sim "req" ~width:1 1;
  set sim "we" ~width:1 we;
  set sim "addr" ~width:8 addr;
  set sim "wr_data" ~width:16 data;
  let rec wait n =
    if n > 50 then Alcotest.fail "sram never acked";
    Cyclesim.cycle sim;
    if out_int sim "ack" = 1 then n else wait (n + 1)
  in
  let n = wait 1 in
  set sim "req" ~width:1 0;
  Cyclesim.cycle sim;
  (n, out_int sim "rd_data")

let test_sram_write_read () =
  let sim = sram_harness ~wait_states:1 in
  set sim "req" ~width:1 0;
  Cyclesim.cycle sim;
  let _, _ = sram_access sim ~we:1 ~addr:42 ~data:4242 in
  let _, v = sram_access sim ~we:0 ~addr:42 ~data:0 in
  check_int "read back" 4242 v;
  let _, v2 = sram_access sim ~we:0 ~addr:7 ~data:0 in
  check_int "unwritten reads zero" 0 v2

let test_sram_latency () =
  List.iter
    (fun ws ->
      let sim = sram_harness ~wait_states:ws in
      set sim "req" ~width:1 0;
      Cyclesim.cycle sim;
      let lat, _ = sram_access sim ~we:0 ~addr:0 ~data:0 in
      check_int
        (Printf.sprintf "latency at %d wait states" ws)
        (Sram.access_cycles ~wait_states:ws)
        lat)
    [ 0; 1; 3 ]

let test_sram_external_not_counted () =
  let req = input "req" 1 and we = input "we" 1 in
  let addr = input "addr" 18 and wr_data = input "wr_data" 16 in
  let sram =
    Sram.create ~words:(256 * 1024) ~width:16 ~wait_states:1 ~req ~we ~addr
      ~wr_data ()
  in
  let circuit = Circuit.create_exn ~name:"big" [ ("rd_data", sram.Sram.rd_data) ] in
  let r = Hwpat_synthesis.Techmap.estimate circuit in
  check_int "no brams for external sram" 0 r.Hwpat_synthesis.Techmap.brams;
  check_bool "controller is small" true (r.Hwpat_synthesis.Techmap.luts < 100)

(* --- Arbiter -------------------------------------------------------- *)

let arbiter_harness () =
  let client prefix =
    {
      Sram_arbiter.req = input (prefix ^ "_req") 1;
      we = input (prefix ^ "_we") 1;
      addr = input (prefix ^ "_addr") 8;
      wr_data = input (prefix ^ "_wdata") 16;
    }
  in
  let a = client "a" and b = client "b" in
  let arb = Sram_arbiter.create ~words:256 ~width:16 ~wait_states:0 ~a ~b () in
  let circuit =
    Circuit.create_exn ~name:"arb_harness"
      [
        ("a_ack", arb.Sram_arbiter.a.Sram_arbiter.ack);
        ("b_ack", arb.Sram_arbiter.b.Sram_arbiter.ack);
        ("a_rd", arb.Sram_arbiter.a.Sram_arbiter.rd_data);
      ]
  in
  Cyclesim.create circuit

let test_arbiter_serialises () =
  let sim = arbiter_harness () in
  List.iter
    (fun (n, w) -> set sim n ~width:w 0)
    [ ("a_req", 1); ("a_we", 1); ("b_req", 1); ("b_we", 1) ];
  set sim "a_addr" ~width:8 1;
  set sim "b_addr" ~width:8 2;
  set sim "a_wdata" ~width:16 100;
  set sim "b_wdata" ~width:16 200;
  Cyclesim.cycle sim;
  (* Both request writes simultaneously; both must complete. *)
  set sim "a_req" ~width:1 1;
  set sim "a_we" ~width:1 1;
  set sim "b_req" ~width:1 1;
  set sim "b_we" ~width:1 1;
  let a_done = ref false and b_done = ref false in
  for _ = 1 to 20 do
    Cyclesim.cycle sim;
    if out_int sim "a_ack" = 1 then begin
      a_done := true;
      set sim "a_req" ~width:1 0
    end;
    if out_int sim "b_ack" = 1 then begin
      b_done := true;
      set sim "b_req" ~width:1 0
    end
  done;
  check_bool "a completed" true !a_done;
  check_bool "b completed" true !b_done;
  (* Read back both addresses through client a. *)
  let read addr =
    set sim "a_req" ~width:1 1;
    set sim "a_we" ~width:1 0;
    set sim "a_addr" ~width:8 addr;
    let rec wait n =
      if n > 20 then Alcotest.fail "arbiter read stuck";
      Cyclesim.cycle sim;
      if out_int sim "a_ack" = 1 then out_int sim "a_rd" else wait (n + 1)
    in
    let v = wait 0 in
    set sim "a_req" ~width:1 0;
    Cyclesim.cycle sim;
    v
  in
  check_int "a's write landed" 100 (read 1);
  check_int "b's write landed" 200 (read 2)

(* --- Line buffer ---------------------------------------------------- *)

let test_line_buffer_window () =
  let px_en = input "px_en" 1 and px_data = input "px_data" 8 in
  let lb = Line_buffer.create ~image_width:4 ~max_rows:8 ~width:8 ~px_en ~px_data () in
  let circuit =
    Circuit.create_exn ~name:"lb_harness"
      [
        ("top", lb.Line_buffer.top);
        ("mid", lb.Line_buffer.mid);
        ("bot", lb.Line_buffer.bot);
        ("col_valid", lb.Line_buffer.col_valid);
        ("warm", lb.Line_buffer.warm);
      ]
  in
  let sim = Cyclesim.create circuit in
  set sim "px_en" ~width:1 0;
  Cyclesim.cycle sim;
  (* Feed three rows of a 4-wide image with pixel = 10*row + col. *)
  let columns = ref [] in
  for row = 0 to 2 do
    for col = 0 to 3 do
      set sim "px_en" ~width:1 1;
      set sim "px_data" ~width:8 ((10 * row) + col);
      Cyclesim.cycle sim;
      set sim "px_en" ~width:1 0;
      Cyclesim.settle sim;
      if out_int sim "col_valid" = 1 && out_int sim "warm" = 1 then
        columns :=
          (out_int sim "top", out_int sim "mid", out_int sim "bot") :: !columns
    done
  done;
  let columns = List.rev !columns in
  check_int "four warm columns" 4 (List.length columns);
  List.iteri
    (fun col (top, mid, bot) ->
      check_int "top is row 0" col top;
      check_int "mid is row 1" (10 + col) mid;
      check_int "bot is row 2" (20 + col) bot)
    columns

let test_line_buffer_uses_two_brams () =
  let px_en = input "px_en" 1 and px_data = input "px_data" 8 in
  let lb =
    Line_buffer.create ~image_width:64 ~max_rows:64 ~width:8 ~px_en ~px_data ()
  in
  let circuit =
    Circuit.create_exn ~name:"lb64"
      [ ("top", lb.Line_buffer.top); ("mid", lb.Line_buffer.mid) ]
  in
  let r = Hwpat_synthesis.Techmap.estimate circuit in
  check_int "two line brams" 2 r.Hwpat_synthesis.Techmap.brams

(* --- Dual-port block RAM ---------------------------------------------- *)

let test_dual_port_bram () =
  let port prefix =
    {
      Bram.enable = input (prefix ^ "_en") 1;
      write = input (prefix ^ "_wr") 1;
      addr = input (prefix ^ "_addr") 4;
      wdata = input (prefix ^ "_wdata") 8;
    }
  in
  let a = port "a" and b = port "b" in
  let ram = Bram.create ~size:16 ~width:8 ~a ~b () in
  let circuit =
    Circuit.create_exn ~name:"dpram"
      [ ("rdata_a", ram.Bram.rdata_a); ("rdata_b", ram.Bram.rdata_b) ]
  in
  let sim = Cyclesim.create circuit in
  List.iter
    (fun n -> set sim n ~width:1 0)
    [ "a_en"; "a_wr"; "b_en"; "b_wr" ];
  set sim "a_addr" ~width:4 0;
  set sim "b_addr" ~width:4 0;
  set sim "a_wdata" ~width:8 0;
  set sim "b_wdata" ~width:8 0;
  Cyclesim.cycle sim;
  (* Port A writes address 3 while port B writes address 5 — truly
     concurrent, different addresses. *)
  set sim "a_en" ~width:1 1;
  set sim "a_wr" ~width:1 1;
  set sim "a_addr" ~width:4 3;
  set sim "a_wdata" ~width:8 33;
  set sim "b_en" ~width:1 1;
  set sim "b_wr" ~width:1 1;
  set sim "b_addr" ~width:4 5;
  set sim "b_wdata" ~width:8 55;
  Cyclesim.cycle sim;
  (* Cross-read: A reads B's address and vice versa. *)
  set sim "a_wr" ~width:1 0;
  set sim "a_addr" ~width:4 5;
  set sim "b_wr" ~width:1 0;
  set sim "b_addr" ~width:4 3;
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  check_int "a sees b's write" 55 (out_int sim "rdata_a");
  check_int "b sees a's write" 33 (out_int sim "rdata_b");
  (* Disabled port holds its last read data. *)
  set sim "a_en" ~width:1 0;
  set sim "b_en" ~width:1 0;
  set sim "a_addr" ~width:4 0;
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  check_int "a holds" 55 (out_int sim "rdata_a");
  (* One block RAM inferred. *)
  check_int "one bram" 1
    (Hwpat_synthesis.Techmap.estimate circuit).Hwpat_synthesis.Techmap.brams

(* --- Handshake helpers ---------------------------------------------- *)

let test_handshake_helpers () =
  let trig = input "trig" 1 and clr = input "clr" 1 in
  let circuit =
    Circuit.create_exn ~name:"hs"
      [
        ("rising", Handshake.rising trig);
        ("sticky", Handshake.sticky ~set:trig ~clear:clr);
        ("count", Handshake.pulse_counter ~width:4 ~enable:trig ~clear:clr);
      ]
  in
  let sim = Cyclesim.create circuit in
  set sim "trig" ~width:1 0;
  set sim "clr" ~width:1 0;
  Cyclesim.cycle sim;
  set sim "trig" ~width:1 1;
  Cyclesim.cycle sim;
  check_int "rising fires" 1 (out_int sim "rising");
  Cyclesim.cycle sim;
  check_int "rising is a pulse" 0 (out_int sim "rising");
  Cyclesim.settle sim;
  check_int "sticky set" 1 (out_int sim "sticky");
  check_int "counted 2" 2 (out_int sim "count");
  set sim "trig" ~width:1 0;
  set sim "clr" ~width:1 1;
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  check_int "sticky cleared" 0 (out_int sim "sticky");
  check_int "count cleared" 0 (out_int sim "count")

(* Under continuous contention from both clients, the alternating
   grant must serve them within a factor of ~2 of each other (no
   starvation). *)
let test_arbiter_fairness () =
  let sim = arbiter_harness () in
  List.iter
    (fun (n, w) -> set sim n ~width:w 0)
    [ ("a_req", 1); ("a_we", 1); ("b_req", 1); ("b_we", 1) ];
  set sim "a_addr" ~width:8 1;
  set sim "b_addr" ~width:8 2;
  set sim "a_wdata" ~width:16 0;
  set sim "b_wdata" ~width:16 0;
  Cyclesim.cycle sim;
  (* Both clients request writes forever; re-raise requests the cycle
     after each ack. *)
  set sim "a_req" ~width:1 1;
  set sim "a_we" ~width:1 1;
  set sim "b_req" ~width:1 1;
  set sim "b_we" ~width:1 1;
  let served_a = ref 0 and served_b = ref 0 in
  for _ = 1 to 600 do
    Cyclesim.cycle sim;
    if out_int sim "a_ack" = 1 then incr served_a;
    if out_int sim "b_ack" = 1 then incr served_b
  done;
  check_bool "both make progress" true (!served_a > 10 && !served_b > 10);
  check_bool "no starvation" true
    (abs (!served_a - !served_b) <= max !served_a !served_b / 2)

let () =
  Alcotest.run "devices"
    [
      ( "fifo",
        [
          Alcotest.test_case "order" `Quick test_fifo_order;
          Alcotest.test_case "full" `Quick test_fifo_full;
          Alcotest.test_case "wraparound" `Quick test_fifo_wraparound;
          Alcotest.test_case "simultaneous r/w" `Quick test_fifo_simultaneous_rw;
          Alcotest.test_case "maps to bram" `Quick test_fifo_maps_to_bram;
        ] );
      ( "lifo",
        [
          Alcotest.test_case "order" `Quick test_lifo_order;
          Alcotest.test_case "full/underflow" `Quick test_lifo_full_and_underflow;
        ] );
      ( "sram",
        [
          Alcotest.test_case "write/read" `Quick test_sram_write_read;
          Alcotest.test_case "latency" `Quick test_sram_latency;
          Alcotest.test_case "external not counted" `Quick
            test_sram_external_not_counted;
        ] );
      ( "arbiter",
        [
          Alcotest.test_case "serialises" `Quick test_arbiter_serialises;
          Alcotest.test_case "fairness" `Quick test_arbiter_fairness;
        ] );
      ("dual-port bram", [ Alcotest.test_case "two ports" `Quick test_dual_port_bram ]);
      ( "line buffer",
        [
          Alcotest.test_case "window" `Quick test_line_buffer_window;
          Alcotest.test_case "uses two brams" `Quick test_line_buffer_uses_two_brams;
        ] );
      ("handshake", [ Alcotest.test_case "helpers" `Quick test_handshake_helpers ]);
    ]
