open Hwpat_core
open Hwpat_video

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let frames =
  [
    ("gradient", Pattern.gradient ~width:12 ~height:10 ~depth:8);
    ("checker", Pattern.checkerboard ~cell:2 ~width:12 ~height:10 ~depth:8 ());
    ("random", Pattern.random ~seed:17 ~width:12 ~height:10 ~depth:8 ());
    ("constant", Pattern.constant ~value:129 ~width:12 ~height:10 ~depth:8);
  ]

let run_copy circuit frame =
  Experiment.run_video_system circuit ~input:frame ~out_width:(Frame.width frame)
    ~out_height:(Frame.height frame)

let run_blur circuit frame =
  Experiment.run_video_system circuit ~input:frame
    ~out_width:(Frame.width frame - 2)
    ~out_height:(Frame.height frame - 2)

(* Every saa2vga variant must reproduce every frame exactly. *)
let test_saa2vga_all_variants_all_frames () =
  List.iter
    (fun (substrate, style) ->
      let circuit = Saa2vga.build ~depth:32 ~substrate ~style () in
      List.iter
        (fun (tag, frame) ->
          let r = run_copy circuit frame in
          if not (Frame.equal r.Experiment.output (Reference.copy frame)) then
            Alcotest.failf "%s on %s: output differs"
              (Saa2vga.name ~substrate ~style)
              tag)
        frames)
    Saa2vga.all_variants

let test_blur_both_styles_all_frames () =
  List.iter
    (fun style ->
      let circuit =
        Blur_system.build ~image_width:12 ~max_rows:10 ~style ()
      in
      List.iter
        (fun (tag, frame) ->
          let r = run_blur circuit frame in
          if not (Frame.equal r.Experiment.output (Reference.blur frame)) then
            Alcotest.failf "%s on %s: output differs"
              (Blur_system.name ~style) tag)
        frames)
    [ Blur_system.Pattern; Blur_system.Custom ]

(* §3.3's headline scenario: changing the aggregate's implementation
   (FIFO -> private SRAMs -> one shared, arbitrated SRAM) leaves the
   model — and therefore the output — intact. *)
let test_change_scenario_output_invariant () =
  let frame = Pattern.random ~seed:23 ~width:12 ~height:10 ~depth:8 () in
  let outputs =
    List.map
      (fun substrate ->
        let c = Saa2vga.build ~depth:32 ~substrate ~style:Saa2vga.Pattern () in
        (run_copy c frame).Experiment.output)
      [ Saa2vga.Fifo; Saa2vga.Sram; Saa2vga.Sram_shared ]
  in
  match outputs with
  | [ a; b; c ] ->
    check_bool "identical across substrates" true
      (Frame.equal a b && Frame.equal b c)
  | _ -> assert false

(* The shared-SRAM extension: both buffers behind one arbitrated
   memory, still bit-exact, and using no block RAM at all. *)
let test_shared_sram_variant () =
  let frame = Pattern.random ~seed:31 ~width:10 ~height:8 ~depth:8 () in
  let c =
    Saa2vga.build ~depth:32 ~substrate:Saa2vga.Sram_shared
      ~style:Saa2vga.Pattern ()
  in
  let r = run_copy c frame in
  check_bool "bit-exact through the arbiter" true
    (Frame.equal r.Experiment.output frame);
  let res = Hwpat_synthesis.Techmap.estimate c in
  check_int "no block RAM" 0 res.Hwpat_synthesis.Techmap.brams;
  Alcotest.check_raises "custom style rejected"
    (Invalid_argument
       "Saa2vga.build: the shared-SRAM variant exists in pattern style only")
    (fun () ->
      ignore
        (Saa2vga.build ~substrate:Saa2vga.Sram_shared ~style:Saa2vga.Custom ()))

(* Backpressure: a consumer that accepts only one pixel in four must
   still receive the exact stream. *)
let test_slow_consumer () =
  let frame = Pattern.gradient ~width:8 ~height:8 ~depth:8 in
  List.iter
    (fun (substrate, style) ->
      let circuit = Saa2vga.build ~depth:16 ~substrate ~style () in
      let sim = Hwpat_rtl.Cyclesim.create circuit in
      let source = Video_source.create sim frame in
      let sink = Vga_sink.create ~ready_every:4 sim () in
      let budget = 40000 in
      let n = ref 0 in
      while Vga_sink.count sink < Frame.pixels frame && !n < budget do
        Video_source.drive source;
        Vga_sink.drive sink;
        Hwpat_rtl.Cyclesim.cycle sim;
        Video_source.observe source;
        Vga_sink.observe sink;
        incr n
      done;
      let got =
        Vga_sink.to_frame sink ~width:8 ~height:8 ~depth:8
      in
      if not (Frame.equal got frame) then
        Alcotest.failf "%s: slow consumer corrupted the stream"
          (Saa2vga.name ~substrate ~style))
    Saa2vga.all_variants

(* The Sobel pipeline reuses the blur's specialised container with a
   different algorithm — exact against the software reference. *)
let test_sobel_system () =
  List.iter
    (fun (tag, frame) ->
      let circuit = Sobel_system.build ~image_width:12 ~max_rows:10 () in
      let r = run_blur circuit frame in
      if not (Frame.equal r.Experiment.output (Reference.sobel frame)) then
        Alcotest.failf "sobel on %s: output differs" tag)
    frames

(* The throughput ordering the paper's design space predicts: the FIFO
   implementation is at least as fast per pixel as the SRAM one. *)
let test_throughput_ordering () =
  let frame = Pattern.gradient ~width:12 ~height:10 ~depth:8 in
  let cycles substrate =
    let c = Saa2vga.build ~depth:32 ~substrate ~style:Saa2vga.Pattern () in
    (run_copy c frame).Experiment.cycles_per_pixel
  in
  check_bool "fifo faster than sram" true
    (cycles Saa2vga.Fifo < cycles Saa2vga.Sram)

(* Determinism: two runs of the same circuit on the same frame agree
   cycle for cycle. *)
let test_determinism () =
  let frame = Pattern.random ~seed:5 ~width:8 ~height:8 ~depth:8 () in
  let circuit = Saa2vga.build ~depth:16 ~substrate:Saa2vga.Fifo ~style:Saa2vga.Pattern () in
  let a = run_copy circuit frame and b = run_copy circuit frame in
  check_int "same cycle count" a.Experiment.cycles b.Experiment.cycles;
  check_bool "same output" true (Frame.equal a.Experiment.output b.Experiment.output)

(* Backpressure on the windowed pipelines: a consumer accepting one
   pixel in six must not lose or corrupt anything — this exercises the
   custom blur's almost-full intake gating and the pattern versions'
   handshake stalling. *)
let test_windowed_slow_consumer () =
  let frame = Pattern.random ~seed:41 ~width:10 ~height:8 ~depth:8 () in
  let check tag circuit reference =
    let sim = Hwpat_rtl.Cyclesim.create circuit in
    let source = Video_source.create sim frame in
    let sink = Vga_sink.create ~ready_every:6 sim () in
    let expected = Frame.pixels reference in
    let n = ref 0 in
    while Vga_sink.count sink < expected && !n < 60000 do
      Video_source.drive source;
      Vga_sink.drive sink;
      Hwpat_rtl.Cyclesim.cycle sim;
      Video_source.observe source;
      Vga_sink.observe sink;
      incr n
    done;
    let got = Vga_sink.to_frame sink ~width:8 ~height:6 ~depth:8 in
    if not (Frame.equal got reference) then
      Alcotest.failf "%s: slow consumer corrupted the window pipeline" tag
  in
  let reference = Reference.blur frame in
  check "blur_pattern"
    (Blur_system.build ~image_width:10 ~max_rows:8 ~style:Blur_system.Pattern ())
    reference;
  check "blur_custom"
    (Blur_system.build ~image_width:10 ~max_rows:8 ~style:Blur_system.Custom ())
    reference;
  check "sobel" (Sobel_system.build ~image_width:10 ~max_rows:8 ())
    (Reference.sobel frame)

(* The §3.3 pixel-format scenario end-to-end: the same RGB frame runs
   through the 24-bit-bus and 8-bit-bus configurations; both must be
   lossless and identical. *)
let test_rgb_pixel_format_systems () =
  let frame = Pattern.rgb_gradient ~width:8 ~height:6 in
  let run bus =
    let c = Saa2vga_rgb.build ~depth:32 ~bus () in
    (Experiment.run_video_system c ~input:frame ~out_width:8 ~out_height:6)
      .Experiment.output
  in
  let wide = run `Wide and narrow = run `Narrow in
  check_bool "wide bus lossless" true (Frame.equal wide frame);
  check_bool "narrow bus lossless" true (Frame.equal narrow frame);
  check_bool "identical across bus widths" true (Frame.equal wide narrow)

(* A deployed system processes frame after frame: reuse the same
   simulator for three consecutive frames without reset. *)
let test_multi_frame_stream () =
  let circuit = Saa2vga.build ~depth:16 ~substrate:Saa2vga.Fifo ~style:Saa2vga.Pattern () in
  let sim = Hwpat_rtl.Cyclesim.create circuit in
  let first = Pattern.gradient ~width:8 ~height:8 ~depth:8 in
  let source = Video_source.create sim first in
  let sink = Vga_sink.create sim () in
  List.iteri
    (fun i frame ->
      Video_source.restart source frame;
      Vga_sink.clear sink;
      let budget = 20000 and n = ref 0 in
      while Vga_sink.count sink < Frame.pixels frame && !n < budget do
        Video_source.drive source;
        Vga_sink.drive sink;
        Hwpat_rtl.Cyclesim.cycle sim;
        Video_source.observe source;
        Vga_sink.observe sink;
        incr n
      done;
      let got = Vga_sink.to_frame sink ~width:8 ~height:8 ~depth:8 in
      if not (Frame.equal got frame) then
        Alcotest.failf "frame %d corrupted on a reused pipeline" i)
    [
      first;
      Pattern.random ~seed:9 ~width:8 ~height:8 ~depth:8 ();
      Pattern.checkerboard ~width:8 ~height:8 ~depth:8 ();
    ]

(* --- Table 3 shape ------------------------------------------------------ *)

let rows = lazy (Experiment.table3 ~frame_width:16 ~frame_height:16 ())

let row label = List.find (fun r -> r.Experiment.label = label) (Lazy.force rows)

let test_table3_functional () =
  List.iter
    (fun r ->
      check_bool (r.Experiment.label ^ " functional") true
        r.Experiment.functional_match)
    (Lazy.force rows)

let test_table3_negligible_overhead () =
  List.iter
    (fun r ->
      let c = r.Experiment.comparison in
      let open Hwpat_synthesis.Resource_report in
      let pct = overhead_percent r.Experiment.comparison in
      check_bool
        (Printf.sprintf "%s LUT overhead %.1f%% < 20%%" r.Experiment.label pct)
        true (pct < 20.0);
      (* The pattern blur keeps its result in a register the fused
         custom pipeline avoids; allow up to 15% FF delta. *)
      check_bool (r.Experiment.label ^ " FF delta small") true
        (abs (c.pattern.ffs - c.custom.ffs) * 100 <= 15 * max 1 c.custom.ffs);
      check_int (r.Experiment.label ^ " BRAM identical") c.custom.brams
        c.pattern.brams;
      check_bool (r.Experiment.label ^ " clock within 15%") true
        (Float.abs (c.pattern.clk_mhz -. c.custom.clk_mhz)
        <= 0.15 *. c.custom.clk_mhz))
    (Lazy.force rows)

let test_table3_cross_design_shape () =
  let open Hwpat_synthesis.Resource_report in
  let s1 = (row "saa2vga 1").Experiment.comparison.pattern in
  let s2 = (row "saa2vga 2").Experiment.comparison.pattern in
  let bl = (row "blur").Experiment.comparison.pattern in
  (* FIFO config uses block RAM; the SRAM config uses none (paper: 2
     vs 0); blur uses block RAM for its line buffers. *)
  check_int "saa2vga1 has 2 brams" 2 s1.brams;
  check_int "saa2vga2 has none" 0 s2.brams;
  check_bool "blur uses brams" true (bl.brams >= 2);
  (* The paper's design-space point: the SRAM version trades BRAMs
     away; the FIFO version's on-chip storage shows up as BRAMs. *)
  check_bool "all designs fit the board" true
    (s1.luts < 6144 && s2.luts < 6144 && bl.luts < 6144)

let test_table3_renders () =
  let text = Experiment.render_table3 (Lazy.force rows) in
  check_bool "mentions all designs" true
    (List.for_all
       (fun (l, _, _, _, _) ->
         let rec contains i =
           i + String.length l <= String.length text
           && (String.sub text i (String.length l) = l || contains (i + 1))
         in
         contains 0)
       Experiment.paper_numbers)

(* --- Pattern catalog ----------------------------------------------------- *)

let test_pattern_catalog () =
  (* [Pattern] unqualified is Hwpat_video.Pattern here; the catalog
     lives in Hwpat_core. *)
  let module P = Hwpat_core.Pattern in
  let it = P.iterator in
  check_bool "behavioural" true (it.P.classification = "behavioural");
  check_int "four participants" 4 (List.length it.P.participants);
  check_bool "describe mentions aggregate" true
    (let text = P.describe it in
     let needle = "Aggregate" in
     let rec contains i =
       i + String.length needle <= String.length text
       && (String.sub text i (String.length needle) = needle || contains (i + 1))
     in
     contains 0);
  check_bool "catalog has several entries" true (List.length P.catalog >= 4)

let () =
  Alcotest.run "systems"
    [
      ( "functional",
        [
          Alcotest.test_case "saa2vga: all variants, all frames" `Slow
            test_saa2vga_all_variants_all_frames;
          Alcotest.test_case "blur: both styles, all frames" `Slow
            test_blur_both_styles_all_frames;
          Alcotest.test_case "change scenario (3.3)" `Quick
            test_change_scenario_output_invariant;
          Alcotest.test_case "shared SRAM (arbitrated)" `Quick
            test_shared_sram_variant;
          Alcotest.test_case "sobel reuses the line buffer" `Quick
            test_sobel_system;
          Alcotest.test_case "slow consumer" `Slow test_slow_consumer;
          Alcotest.test_case "throughput ordering" `Quick test_throughput_ordering;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "multi-frame reuse" `Quick test_multi_frame_stream;
          Alcotest.test_case "rgb pixel format (3.3)" `Quick
            test_rgb_pixel_format_systems;
          Alcotest.test_case "windowed slow consumer" `Quick
            test_windowed_slow_consumer;
        ] );
      ( "table 3",
        [
          Alcotest.test_case "functional equivalence" `Slow test_table3_functional;
          Alcotest.test_case "negligible overhead" `Slow
            test_table3_negligible_overhead;
          Alcotest.test_case "cross-design shape" `Slow test_table3_cross_design_shape;
          Alcotest.test_case "renders" `Slow test_table3_renders;
        ] );
      ("catalog", [ Alcotest.test_case "iterator entry" `Quick test_pattern_catalog ]);
    ]
