open Hwpat_rtl
open Hwpat_rtl.Signal

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_widths () =
  let a = input "a" 8 and b = input "b" 8 in
  check_int "add width" 8 (width (a +: b));
  check_int "eq width" 1 (width (a ==: b));
  check_int "lt width" 1 (width (a <: b));
  check_int "concat width" 16 (width (concat_msb [ a; b ]));
  check_int "select width" 4 (width (select a ~high:7 ~low:4));
  check_int "mux width" 8 (width (mux (input "s" 1) [ a; b ]));
  check_int "uresize up" 12 (width (uresize a 12));
  check_int "sresize down" 4 (width (sresize a 4));
  Alcotest.check_raises "mismatch raises"
    (Invalid_argument "Signal.(+:): width mismatch (8 vs 4)") (fun () ->
      ignore (a +: input "c" 4))

let test_select_identity () =
  let a = input "a" 8 in
  check_bool "full select is identity" true (uid (select a ~high:7 ~low:0) = uid a)

let test_mux_checks () =
  let s = input "s" 1 in
  Alcotest.check_raises "too many cases"
    (Invalid_argument "Signal.mux: more cases than the select can address")
    (fun () -> ignore (mux s [ zero 4; zero 4; zero 4 ]));
  Alcotest.check_raises "no cases" (Invalid_argument "Signal.mux: no cases")
    (fun () -> ignore (mux s []));
  Alcotest.check_raises "mux2 wide condition"
    (Invalid_argument "Signal.mux2: condition must be 1 bit") (fun () ->
      ignore (mux2 (input "c2" 2) (zero 4) (zero 4)))

let test_wire_rules () =
  let w = wire 8 in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Signal.(<==): width mismatch (8 vs 4)") (fun () ->
      w <== zero 4);
  w <== zero 8;
  Alcotest.check_raises "double drive"
    (Invalid_argument "Signal.(<==): wire already driven") (fun () -> w <== zero 8);
  Alcotest.check_raises "assign to non-wire"
    (Invalid_argument "Signal.(<==): target is not a wire") (fun () ->
      zero 8 <== zero 8)

let test_names () =
  let a = input "a" 4 -- "alpha" -- "beta" in
  Alcotest.(check (list string)) "names in order" [ "alpha"; "beta" ] (names a)

let test_reg_checks () =
  let d = input "d" 8 in
  Alcotest.check_raises "bad enable width"
    (Invalid_argument "Signal.reg: enable must be 1 bit") (fun () ->
      ignore (reg ~enable:(input "e" 2) d));
  Alcotest.check_raises "bad clear_to width"
    (Invalid_argument "Signal.reg: clear_to width mismatch") (fun () ->
      ignore (reg ~clear:(input "c" 1) ~clear_to:(Bits.zero 4) d));
  let q = reg d in
  check_int "reg width" 8 (width q)

let test_memory () =
  let m = create_memory ~size:16 ~width:8 ~name:"scratch" () in
  check_int "size" 16 (memory_size m);
  check_int "width" 8 (memory_width m);
  Alcotest.(check string) "name" "scratch" (memory_name m);
  mem_write_port m ~enable:(input "we" 1) ~addr:(input "wa" 4) ~data:(input "wd" 8);
  check_int "one write port" 1 (List.length (memory_write_ports m));
  let r = mem_read_async m ~addr:(input "ra" 4) in
  check_int "read width" 8 (width r);
  (* Read-port deps must include the write port signals so circuits
     retain them. *)
  check_int "deps include write port" 4 (List.length (deps r));
  Alcotest.check_raises "bad data width"
    (Invalid_argument "Signal.mem_write_port: data width mismatch") (fun () ->
      mem_write_port m ~enable:(input "we2" 1) ~addr:(input "wa2" 4)
        ~data:(input "wd2" 4))

let test_circuit_basics () =
  let a = input "a" 8 and b = input "b" 8 in
  let sum = a +: b in
  let c = Circuit.create_exn ~name:"adder" [ ("sum", sum) ] in
  Alcotest.(check (list string)) "inputs sorted" [ "a"; "b" ]
    (List.map fst (Circuit.inputs c));
  check_int "outputs" 1 (List.length (Circuit.outputs c));
  check_bool "schedule respects deps" true
    (let order = List.map uid (Circuit.signals c) in
     let pos u = Option.get (List.find_index (Int.equal u) order) in
     pos (uid sum) > pos (uid a) && pos (uid sum) > pos (uid b))

let test_circuit_errors () =
  let a = input "a" 4 in
  Alcotest.check_raises "duplicate outputs"
    (Invalid_argument "Circuit.create_exn: duplicate output name") (fun () ->
      ignore (Circuit.create_exn ~name:"bad" [ ("x", a); ("x", a) ]));
  let dangling = wire 4 in
  (try
     ignore (Circuit.create_exn ~name:"bad" [ ("x", dangling +: a) ]);
     Alcotest.fail "expected undriven wire failure"
   with Invalid_argument msg ->
     check_bool "mentions undriven" true
       (String.length msg >= 7 && String.sub msg 0 7 = "Circuit"));
  let clash_a = input "n" 4 and clash_b = input "n" 4 in
  (try
     ignore (Circuit.create_exn ~name:"bad" [ ("x", clash_a +: clash_b) ]);
     Alcotest.fail "expected duplicate input failure"
   with Invalid_argument _ -> ());
  (* Combinational loop detection. *)
  let loop = wire 4 in
  loop <== (loop +: a);
  try
    ignore (Circuit.create_exn ~name:"bad" [ ("x", loop) ]);
    Alcotest.fail "expected cycle failure"
  with Invalid_argument _ -> ()

let test_register_loop_ok () =
  (* Feedback through a register is legal. *)
  let counter = reg_fb ~width:8 (fun q -> q +: one 8) in
  let c = Circuit.create_exn ~name:"counter" [ ("q", counter) ] in
  check_int "one register" 1 (List.length (Circuit.registers c))


(* --- Fsm helper --------------------------------------------------------- *)

let test_fsm_basics () =
  let go = input "go" 1 and stop = input "stop" 1 in
  let fsm = Fsm.create ~states:3 () in
  Fsm.transitions fsm
    [ (0, [ (go, 1) ]); (1, [ (stop, 2); (go, 1) ]); (2, [ (vdd, 0) ]) ];
  let c =
    Circuit.create_exn ~name:"fsm"
      [ ("s0", Fsm.is fsm 0); ("s1", Fsm.is fsm 1); ("s2", Fsm.is fsm 2);
        ("state", Fsm.state fsm) ]
  in
  let sim = Cyclesim.create c in
  let set name v = Cyclesim.in_port sim name := Bits.of_int ~width:1 v in
  let out name = Bits.to_int !(Cyclesim.out_port sim name) in
  set "go" 0;
  set "stop" 0;
  Cyclesim.cycle sim;
  check_int "starts in 0" 1 (out "s0");
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  check_int "holds without condition" 1 (out "s0");
  set "go" 1;
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  check_int "moved to 1" 1 (out "s1");
  (* Priority: stop outranks go in state 1. *)
  set "stop" 1;
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  check_int "priority transition" 1 (out "s2");
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  check_int "unconditional return" 1 (out "s0")

let test_fsm_errors () =
  Alcotest.check_raises "too few states"
    (Invalid_argument "Fsm.create: need at least two states") (fun () ->
      ignore (Fsm.create ~states:1 ()));
  let fsm = Fsm.create ~states:2 () in
  Alcotest.check_raises "unknown state"
    (Invalid_argument "Fsm.is: no such state") (fun () -> ignore (Fsm.is fsm 5));
  Fsm.transitions fsm [ (0, [ (vdd, 1) ]) ];
  Alcotest.check_raises "double close"
    (Invalid_argument "Fsm.transitions: already closed") (fun () ->
      Fsm.transitions fsm [])

let test_fsm_clear () =
  let clear = input "clr" 1 in
  let fsm = Fsm.create ~clear ~states:2 () in
  Fsm.transitions fsm [ (0, [ (vdd, 1) ]); (1, []) ];
  let c = Circuit.create_exn ~name:"fsmc" [ ("s0", Fsm.is fsm 0) ] in
  let sim = Cyclesim.create c in
  Cyclesim.in_port sim "clr" := Bits.zero 1;
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  check_int "left state 0" 0 (Bits.to_int !(Cyclesim.out_port sim "s0"));
  Cyclesim.in_port sim "clr" := Bits.one 1;
  Cyclesim.cycle sim;
  Cyclesim.settle sim;
  check_int "clear returns to 0" 1 (Bits.to_int !(Cyclesim.out_port sim "s0"))

let () =
  Alcotest.run "signal"
    [
      ( "signal",
        [
          Alcotest.test_case "widths" `Quick test_widths;
          Alcotest.test_case "select identity" `Quick test_select_identity;
          Alcotest.test_case "mux checks" `Quick test_mux_checks;
          Alcotest.test_case "wire rules" `Quick test_wire_rules;
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "reg checks" `Quick test_reg_checks;
          Alcotest.test_case "memory" `Quick test_memory;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "basics" `Quick test_circuit_basics;
          Alcotest.test_case "errors" `Quick test_circuit_errors;
          Alcotest.test_case "register loop ok" `Quick test_register_loop_ok;
        ] );
      ( "fsm",
        [
          Alcotest.test_case "basics" `Quick test_fsm_basics;
          Alcotest.test_case "errors" `Quick test_fsm_errors;
          Alcotest.test_case "clear" `Quick test_fsm_clear;
        ] );
    ]
