open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_test_support.Sim_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* All queue variants must behave identically; only latency differs. *)
let queue_builders ~depth ~width =
  [
    ("fifo", fun d -> Queue_c.over_fifo ~depth ~width d);
    ("bram", fun d -> Queue_c.over_bram ~depth ~width d);
    ("sram0", fun d -> Queue_c.over_sram ~depth ~width ~wait_states:0 d);
    ("sram2", fun d -> Queue_c.over_sram ~depth ~width ~wait_states:2 d);
  ]

let stack_builders ~depth ~width =
  [
    ("lifo", fun d -> Stack_c.over_lifo ~depth ~width d);
    ("bram", fun d -> Stack_c.over_bram ~depth ~width d);
    ("sram1", fun d -> Stack_c.over_sram ~depth ~width ~wait_states:1 d);
  ]

let test_queue_fifo_order () =
  List.iter
    (fun (tag, build) ->
      let sim = seq_harness ~name:("q_" ^ tag) ~width:8 build in
      quiesce sim;
      check_int (tag ^ ": initially empty") 1 (out_int sim "empty");
      List.iter (fun v -> ignore (seq_put sim ~width:8 v)) [ 10; 20; 30 ];
      Cyclesim.settle sim;
      check_int (tag ^ ": size 3") 3 (out_int sim "size");
      let a, _ = seq_get sim and b, _ = seq_get sim and c, _ = seq_get sim in
      Alcotest.(check (list int)) (tag ^ ": FIFO order") [ 10; 20; 30 ] [ a; b; c ];
      Cyclesim.settle sim;
      check_int (tag ^ ": empty after drain") 1 (out_int sim "empty"))
    (queue_builders ~depth:8 ~width:8)

let test_queue_blocks_when_empty () =
  List.iter
    (fun (tag, build) ->
      let sim = seq_harness ~name:("qe_" ^ tag) ~width:8 build in
      quiesce sim;
      (* A get on an empty queue must stall, then complete when data
         arrives: start the request, cycle a while, then push. *)
      set sim "get_req" ~width:1 1;
      for _ = 1 to 10 do
        Cyclesim.cycle sim;
        check_int (tag ^ ": no ack while empty") 0 (out_int sim "get_ack")
      done;
      set sim "put_req" ~width:1 1;
      set sim "put_data" ~width:8 77;
      let rec wait n =
        if n > 100 then Alcotest.fail (tag ^ ": get never completed");
        Cyclesim.cycle sim;
        if out_int sim "put_ack" = 1 then set sim "put_req" ~width:1 0;
        if out_int sim "get_ack" = 1 then out_int sim "get_data" else wait (n + 1)
      in
      check_int (tag ^ ": unblocked get") 77 (wait 0);
      set sim "get_req" ~width:1 0;
      Cyclesim.cycle sim)
    (queue_builders ~depth:8 ~width:8)

let test_queue_capacity () =
  List.iter
    (fun (tag, build) ->
      let sim = seq_harness ~name:("qc_" ^ tag) ~width:8 build in
      quiesce sim;
      for v = 1 to 4 do
        ignore (seq_put sim ~width:8 v)
      done;
      Cyclesim.settle sim;
      check_int (tag ^ ": full") 1 (out_int sim "full");
      (* A put on a full queue must stall until space appears. *)
      set sim "put_req" ~width:1 1;
      set sim "put_data" ~width:8 99;
      for _ = 1 to 8 do
        Cyclesim.cycle sim;
        check_int (tag ^ ": no ack while full") 0 (out_int sim "put_ack")
      done;
      set sim "put_req" ~width:1 0;
      Cyclesim.cycle sim;
      (* Drain everything; order preserved and 99 never entered. *)
      let drained = List.init 4 (fun _ -> fst (seq_get sim)) in
      Alcotest.(check (list int)) (tag ^ ": contents intact") [ 1; 2; 3; 4 ] drained)
    (queue_builders ~depth:4 ~width:8)

let test_queue_wraparound_long () =
  List.iter
    (fun (tag, build) ->
      let sim = seq_harness ~name:("qw_" ^ tag) ~width:8 build in
      quiesce sim;
      (* Stream five times the depth through a part-filled queue so the
         pointers wrap repeatedly in every implementation. *)
      let expected = ref [] and got = ref [] in
      for v = 0 to 5 do
        ignore (seq_put sim ~width:8 v);
        expected := v :: !expected
      done;
      for v = 6 to 40 do
        ignore (seq_put sim ~width:8 (v land 255));
        expected := (v land 255) :: !expected;
        got := fst (seq_get sim) :: !got
      done;
      Cyclesim.settle sim;
      while out_int sim "empty" = 0 do
        got := fst (seq_get sim) :: !got;
        Cyclesim.settle sim
      done;
      Alcotest.(check (list int))
        (tag ^ ": all data in order")
        (List.rev !expected) (List.rev !got))
    (queue_builders ~depth:8 ~width:8)

(* Model-based random testing: the RTL queue must match OCaml's Queue. *)
let test_queue_random_vs_model () =
  List.iter
    (fun (tag, build) ->
      let sim = seq_harness ~name:("qr_" ^ tag) ~width:8 build in
      quiesce sim;
      let model = Queue.create () in
      let depth = 8 in
      Random.self_init ();
      let seed = Random.int 1000000 in
      Random.init seed;
      for step = 0 to 200 do
        if Random.bool () then begin
          let v = Random.int 256 in
          if Queue.length model < depth then begin
            ignore (seq_put sim ~width:8 v);
            Queue.push v model
          end
        end
        else if Queue.length model > 0 then begin
          let v, _ = seq_get sim in
          let expect = Queue.pop model in
          if v <> expect then
            Alcotest.failf "%s: step %d (seed %d): got %d expected %d" tag step
              seed v expect
        end;
        Cyclesim.settle sim;
        let sz = out_int sim "size" in
        if sz <> Queue.length model then
          Alcotest.failf "%s: step %d (seed %d): size %d vs model %d" tag step seed
            sz (Queue.length model)
      done)
    (queue_builders ~depth:8 ~width:8)

let test_stack_order () =
  List.iter
    (fun (tag, build) ->
      let sim = seq_harness ~name:("s_" ^ tag) ~width:8 build in
      quiesce sim;
      List.iter (fun v -> ignore (seq_put sim ~width:8 v)) [ 1; 2; 3 ];
      let a, _ = seq_get sim in
      check_int (tag ^ ": LIFO top") 3 a;
      ignore (seq_put sim ~width:8 9);
      let b, _ = seq_get sim and c, _ = seq_get sim and d, _ = seq_get sim in
      Alcotest.(check (list int)) (tag ^ ": LIFO order") [ 9; 2; 1 ] [ b; c; d ])
    (stack_builders ~depth:8 ~width:8)

let test_stack_random_vs_model () =
  List.iter
    (fun (tag, build) ->
      let sim = seq_harness ~name:("sr_" ^ tag) ~width:8 build in
      quiesce sim;
      let model = ref [] in
      let depth = 8 in
      Random.init 42;
      for _ = 0 to 150 do
        if Random.bool () && List.length !model < depth then begin
          let v = Random.int 256 in
          ignore (seq_put sim ~width:8 v);
          model := v :: !model
        end
        else
          match !model with
          | [] -> ()
          | top :: rest ->
            let v, _ = seq_get sim in
            check_int (tag ^ ": pop matches") top v;
            model := rest
      done)
    (stack_builders ~depth:8 ~width:8)

(* Latency shape: the SRAM-backed queue is strictly slower per access
   than the FIFO-backed one — the design-space point §4 makes. *)
let test_latency_ordering () =
  let latency build =
    let sim = seq_harness ~name:"lat" ~width:8 build in
    quiesce sim;
    ignore (seq_put sim ~width:8 1);
    let _, n = seq_get sim in
    n
  in
  let fifo = latency (fun d -> Queue_c.over_fifo ~depth:8 ~width:8 d) in
  let sram0 = latency (fun d -> Queue_c.over_sram ~depth:8 ~width:8 ~wait_states:0 d) in
  let sram3 = latency (fun d -> Queue_c.over_sram ~depth:8 ~width:8 ~wait_states:3 d) in
  check_bool "fifo faster than sram" true (fifo < sram0);
  check_bool "wait states add latency" true (sram0 < sram3)

(* --- Read buffer ------------------------------------------------------ *)

let rbuffer_harness build_of_stream =
  let stream =
    {
      Read_buffer.px_valid = input "px_valid" 1;
      px_data = input "px_data" 8;
    }
  in
  let rb : Read_buffer.t = build_of_stream ~stream ~get_req:(input "get_req" 1) () in
  let circuit =
    Circuit.create_exn ~name:"rb"
      [
        ("get_ack", rb.Read_buffer.seq.Container_intf.get_ack);
        ("get_data", rb.Read_buffer.seq.Container_intf.get_data);
        ("px_ready", rb.Read_buffer.px_ready);
        ("empty", rb.Read_buffer.seq.Container_intf.empty);
      ]
  in
  Cyclesim.create circuit

let test_read_buffer_streams () =
  List.iter
    (fun (tag, build) ->
      let sim = rbuffer_harness build in
      set sim "px_valid" ~width:1 0;
      set sim "px_data" ~width:8 0;
      set sim "get_req" ~width:1 0;
      Cyclesim.cycle sim;
      (* Producer pushes three pixels with the valid/ready handshake. *)
      List.iter
        (fun v ->
          set sim "px_valid" ~width:1 1;
          set sim "px_data" ~width:8 v;
          let rec wait n =
            if n > 200 then Alcotest.fail (tag ^ ": stream never accepted");
            Cyclesim.cycle sim;
            if out_int sim "px_ready" = 0 then wait (n + 1)
          in
          wait 0;
          set sim "px_valid" ~width:1 0;
          Cyclesim.cycle sim)
        [ 5; 6; 7 ];
      (* Consumer drains through the get side. *)
      let got =
        List.init 3 (fun _ ->
            set sim "get_req" ~width:1 1;
            let rec wait n =
              if n > 200 then Alcotest.fail (tag ^ ": get stuck");
              Cyclesim.cycle sim;
              if out_int sim "get_ack" = 1 then out_int sim "get_data"
              else wait (n + 1)
            in
            let v = wait 0 in
            set sim "get_req" ~width:1 0;
            Cyclesim.cycle sim;
            v)
      in
      Alcotest.(check (list int)) (tag ^ ": stream order") [ 5; 6; 7 ] got)
    [
      ("fifo", fun ~stream ~get_req () -> Read_buffer.over_fifo ~depth:8 ~width:8 ~stream ~get_req ());
      ("bram", fun ~stream ~get_req () -> Read_buffer.over_bram ~depth:8 ~width:8 ~stream ~get_req ());
      ( "sram",
        fun ~stream ~get_req () ->
          Read_buffer.over_sram ~depth:8 ~width:8 ~wait_states:1 ~stream ~get_req () );
    ]

(* --- Write buffer ----------------------------------------------------- *)

let test_write_buffer_drains () =
  let wb =
    Write_buffer.over_fifo ~depth:8 ~width:8 ~out_ready:(input "out_ready" 1)
      ~put_req:(input "put_req" 1) ~put_data:(input "put_data" 8) ()
  in
  let circuit =
    Circuit.create_exn ~name:"wb"
      [
        ("put_ack", wb.Write_buffer.seq.Container_intf.put_ack);
        ("out_valid", wb.Write_buffer.stream.Write_buffer.out_valid);
        ("out_data", wb.Write_buffer.stream.Write_buffer.out_data);
      ]
  in
  let sim = Cyclesim.create circuit in
  set sim "out_ready" ~width:1 0;
  set sim "put_req" ~width:1 0;
  set sim "put_data" ~width:8 0;
  Cyclesim.cycle sim;
  List.iter
    (fun v ->
      set sim "put_req" ~width:1 1;
      set sim "put_data" ~width:8 v;
      let rec wait n =
        if n > 100 then Alcotest.fail "wb put stuck";
        Cyclesim.cycle sim;
        if out_int sim "put_ack" = 0 then wait (n + 1)
      in
      wait 0;
      set sim "put_req" ~width:1 0;
      Cyclesim.cycle sim)
    [ 11; 22; 33 ];
  (* Consumer raises ready and collects the pulses. *)
  set sim "out_ready" ~width:1 1;
  let got = ref [] in
  for _ = 1 to 30 do
    Cyclesim.cycle sim;
    if out_int sim "out_valid" = 1 then got := out_int sim "out_data" :: !got
  done;
  Alcotest.(check (list int)) "drained in order" [ 11; 22; 33 ] (List.rev !got)

(* --- Vector ----------------------------------------------------------- *)

let vector_harness build =
  let d =
    {
      Container_intf.read_req = input "read_req" 1;
      write_req = input "write_req" 1;
      addr = input "addr" 4;
      write_data = input "write_data" 8;
    }
  in
  let v : Container_intf.random = build d in
  let circuit =
    Circuit.create_exn ~name:"vec"
      [
        ("read_ack", v.Container_intf.read_ack);
        ("read_data", v.Container_intf.read_data);
        ("write_ack", v.Container_intf.write_ack);
      ]
  in
  Cyclesim.create circuit

let vec_write sim a v =
  set sim "write_req" ~width:1 1;
  set sim "addr" ~width:4 a;
  set sim "write_data" ~width:8 v;
  ignore (cycles_until sim "write_ack");
  set sim "write_req" ~width:1 0;
  Cyclesim.cycle sim

let vec_read sim a =
  set sim "read_req" ~width:1 1;
  set sim "addr" ~width:4 a;
  ignore (cycles_until sim "read_ack");
  let v = out_int sim "read_data" in
  set sim "read_req" ~width:1 0;
  Cyclesim.cycle sim;
  v

let test_vector_random_access () =
  List.iter
    (fun (tag, build) ->
      let sim = vector_harness build in
      set sim "read_req" ~width:1 0;
      set sim "write_req" ~width:1 0;
      set sim "addr" ~width:4 0;
      set sim "write_data" ~width:8 0;
      Cyclesim.cycle sim;
      let model = Array.make 16 0 in
      Random.init 7;
      for _ = 0 to 100 do
        let a = Random.int 16 in
        if Random.bool () then begin
          let v = Random.int 256 in
          vec_write sim a v;
          model.(a) <- v
        end
        else check_int (tag ^ ": read matches") model.(a) (vec_read sim a)
      done)
    [
      ("bram", fun d -> Vector_c.over_bram ~length:16 ~width:8 d);
      ("sram", fun d -> Vector_c.over_sram ~length:16 ~width:8 ~wait_states:1 d);
    ]

(* --- Assoc array ------------------------------------------------------ *)

let assoc_harness build =
  let d =
    {
      Container_intf.lookup_req = input "lookup_req" 1;
      insert_req = input "insert_req" 1;
      delete_req = input "delete_req" 1;
      key = input "key" 8;
      value_in = input "value_in" 8;
    }
  in
  let a : Container_intf.assoc = build d in
  let circuit =
    Circuit.create_exn ~name:"assoc"
      [
        ("lookup_ack", a.Container_intf.lookup_ack);
        ("lookup_found", a.Container_intf.lookup_found);
        ("lookup_data", a.Container_intf.lookup_data);
        ("insert_ack", a.Container_intf.insert_ack);
        ("insert_ok", a.Container_intf.insert_ok);
        ("delete_ack", a.Container_intf.delete_ack);
        ("delete_found", a.Container_intf.delete_found);
        ("occupancy", a.Container_intf.occupancy);
      ]
  in
  Cyclesim.create circuit

let assoc_quiesce sim =
  List.iter
    (fun n -> set sim n ~width:1 0)
    [ "lookup_req"; "insert_req"; "delete_req" ];
  set sim "key" ~width:8 0;
  set sim "value_in" ~width:8 0;
  Cyclesim.cycle sim

let assoc_op sim ~req ~ack ~key ?(value = 0) () =
  set sim "key" ~width:8 key;
  set sim "value_in" ~width:8 value;
  set sim req ~width:1 1;
  ignore (cycles_until sim ack);
  let results =
    ( out_int sim "lookup_found",
      out_int sim "lookup_data",
      out_int sim "insert_ok",
      out_int sim "delete_found" )
  in
  set sim req ~width:1 0;
  Cyclesim.cycle sim;
  results

let test_assoc_basic () =
  let sim = assoc_harness (Assoc_array.over_bram ~slots:16 ~key_width:8 ~value_width:8) in
  assoc_quiesce sim;
  let insert k v =
    let _, _, ok, _ = assoc_op sim ~req:"insert_req" ~ack:"insert_ack" ~key:k ~value:v () in
    ok
  in
  let lookup k =
    let found, data, _, _ = assoc_op sim ~req:"lookup_req" ~ack:"lookup_ack" ~key:k () in
    (found, data)
  in
  let delete k =
    let _, _, _, found = assoc_op sim ~req:"delete_req" ~ack:"delete_ack" ~key:k () in
    found
  in
  check_int "insert ok" 1 (insert 42 7);
  check_bool "found after insert" true (lookup 42 = (1, 7));
  check_bool "missing key" true (fst (lookup 43) = 0);
  check_int "update ok" 1 (insert 42 9);
  check_bool "updated value" true (lookup 42 = (1, 9));
  Cyclesim.settle sim;
  check_int "occupancy 1 after update" 1 (out_int sim "occupancy");
  check_int "delete finds" 1 (delete 42);
  check_bool "gone after delete" true (fst (lookup 42) = 0);
  Cyclesim.settle sim;
  check_int "occupancy 0" 0 (out_int sim "occupancy")

let test_assoc_collisions () =
  (* Keys 1, 17, 33 all hash to slot 1 in a 16-slot table. *)
  let sim = assoc_harness (Assoc_array.over_bram ~slots:16 ~key_width:8 ~value_width:8) in
  assoc_quiesce sim;
  let insert k v =
    let _, _, ok, _ = assoc_op sim ~req:"insert_req" ~ack:"insert_ack" ~key:k ~value:v () in
    ok
  in
  let lookup k =
    let found, data, _, _ = assoc_op sim ~req:"lookup_req" ~ack:"lookup_ack" ~key:k () in
    (found, data)
  in
  let delete k =
    let _, _, _, found = assoc_op sim ~req:"delete_req" ~ack:"delete_ack" ~key:k () in
    found
  in
  check_int "a" 1 (insert 1 11);
  check_int "b" 1 (insert 17 12);
  check_int "c" 1 (insert 33 13);
  check_bool "all reachable" true
    (lookup 1 = (1, 11) && lookup 17 = (1, 12) && lookup 33 = (1, 13));
  (* Delete the middle of the probe chain; the tail must stay
     reachable (tombstone semantics). *)
  check_int "delete middle" 1 (delete 17);
  check_bool "tail still reachable" true (lookup 33 = (1, 13));
  check_bool "deleted is gone" true (fst (lookup 17) = 0);
  (* Re-insert reclaims the tombstone. *)
  check_int "reinsert" 1 (insert 17 99);
  check_bool "reinserted" true (lookup 17 = (1, 99))

let test_assoc_random_vs_hashtbl () =
  let slots = 16 in
  let sim = assoc_harness (Assoc_array.over_bram ~slots ~key_width:8 ~value_width:8) in
  assoc_quiesce sim;
  let model = Hashtbl.create 16 in
  Random.init 99;
  for step = 0 to 150 do
    let k = Random.int 32 in
    match Random.int 3 with
    | 0 when Hashtbl.length model < slots ->
      let v = Random.int 256 in
      let _, _, ok, _ =
        assoc_op sim ~req:"insert_req" ~ack:"insert_ack" ~key:k ~value:v ()
      in
      if ok = 1 then Hashtbl.replace model k v
      else if not (Hashtbl.mem model k) && Hashtbl.length model < slots then
        Alcotest.failf "step %d: insert %d failed with space available" step k
    | 1 ->
      let found, data, _, _ =
        assoc_op sim ~req:"lookup_req" ~ack:"lookup_ack" ~key:k ()
      in
      (match Hashtbl.find_opt model k with
      | Some v ->
        if (found, data) <> (1, v) then
          Alcotest.failf "step %d: lookup %d got (%d,%d) expected (1,%d)" step k
            found data v
      | None ->
        if found <> 0 then
          Alcotest.failf "step %d: lookup %d found ghost" step k)
    | _ ->
      let _, _, _, found =
        assoc_op sim ~req:"delete_req" ~ack:"delete_ack" ~key:k ()
      in
      let expected = if Hashtbl.mem model k then 1 else 0 in
      if found <> expected then
        Alcotest.failf "step %d: delete %d found=%d expected=%d" step k found
          expected;
      Hashtbl.remove model k
  done;
  Cyclesim.settle sim;
  check_int "final occupancy" (Hashtbl.length model) (out_int sim "occupancy")

(* --- Shared SRAM through the arbiter --------------------------------- *)

let test_two_queues_shared_sram () =
  let open Hwpat_devices in
  (* Wire-based clients let the arbiter exist before the queues. *)
  let mk_client () =
    {
      Sram_arbiter.req = wire 1;
      we = wire 1;
      addr = wire 4;
      wr_data = wire 8;
    }
  in
  let ca = mk_client () and cb = mk_client () in
  let arb = Sram_arbiter.create ~words:16 ~width:8 ~wait_states:0 ~a:ca ~b:cb () in
  let target (c : Sram_arbiter.client) (g : Sram_arbiter.grant)
      (r : Container_intf.mem_request) ~hi =
    c.Sram_arbiter.req <== r.Container_intf.mem_req;
    c.Sram_arbiter.we <== r.Container_intf.mem_we;
    (* Each queue gets half of the shared address space. *)
    c.Sram_arbiter.addr
    <== concat_msb [ (if hi then vdd else gnd); uresize r.Container_intf.mem_addr 3 ];
    c.Sram_arbiter.wr_data <== r.Container_intf.mem_wdata;
    Mem_target.of_arbiter_grant g
  in
  let da =
    {
      Container_intf.get_req = input "a_get_req" 1;
      put_req = input "a_put_req" 1;
      put_data = input "a_put_data" 8;
    }
  in
  let db =
    {
      Container_intf.get_req = input "b_get_req" 1;
      put_req = input "b_put_req" 1;
      put_data = input "b_put_data" 8;
    }
  in
  let qa =
    Queue_c.over_mem ~name:"qa" ~depth:8 ~width:8
      ~target:(fun r -> target ca arb.Sram_arbiter.a r ~hi:false)
      da
  in
  let qb =
    Queue_c.over_mem ~name:"qb" ~depth:8 ~width:8
      ~target:(fun r -> target cb arb.Sram_arbiter.b r ~hi:true)
      db
  in
  let circuit =
    Circuit.create_exn ~name:"shared"
      [
        ("a_get_ack", qa.Container_intf.get_ack);
        ("a_get_data", qa.Container_intf.get_data);
        ("a_put_ack", qa.Container_intf.put_ack);
        ("b_get_ack", qb.Container_intf.get_ack);
        ("b_get_data", qb.Container_intf.get_data);
        ("b_put_ack", qb.Container_intf.put_ack);
      ]
  in
  let sim = Cyclesim.create circuit in
  List.iter
    (fun n -> set sim n ~width:1 0)
    [ "a_get_req"; "a_put_req"; "b_get_req"; "b_put_req" ];
  set sim "a_put_data" ~width:8 0;
  set sim "b_put_data" ~width:8 0;
  Cyclesim.cycle sim;
  (* Push different data into both queues *simultaneously*: the arbiter
     must serialise the SRAM accesses without corrupting either. *)
  for v = 1 to 4 do
    set sim "a_put_req" ~width:1 1;
    set sim "a_put_data" ~width:8 v;
    set sim "b_put_req" ~width:1 1;
    set sim "b_put_data" ~width:8 (v + 100);
    let a_done = ref false and b_done = ref false in
    let rec wait n =
      if n > 200 then Alcotest.fail "shared puts stuck";
      Cyclesim.cycle sim;
      if out_int sim "a_put_ack" = 1 then begin
        a_done := true;
        set sim "a_put_req" ~width:1 0
      end;
      if out_int sim "b_put_ack" = 1 then begin
        b_done := true;
        set sim "b_put_req" ~width:1 0
      end;
      if not (!a_done && !b_done) then wait (n + 1)
    in
    wait 0;
    Cyclesim.cycle sim
  done;
  (* Drain both, again concurrently. *)
  let got_a = ref [] and got_b = ref [] in
  for _ = 1 to 4 do
    set sim "a_get_req" ~width:1 1;
    set sim "b_get_req" ~width:1 1;
    let a_done = ref false and b_done = ref false in
    let rec wait n =
      if n > 200 then Alcotest.fail "shared gets stuck";
      Cyclesim.cycle sim;
      if (not !a_done) && out_int sim "a_get_ack" = 1 then begin
        a_done := true;
        got_a := out_int sim "a_get_data" :: !got_a;
        set sim "a_get_req" ~width:1 0
      end;
      if (not !b_done) && out_int sim "b_get_ack" = 1 then begin
        b_done := true;
        got_b := out_int sim "b_get_data" :: !got_b;
        set sim "b_get_req" ~width:1 0
      end;
      if not (!a_done && !b_done) then wait (n + 1)
    in
    wait 0;
    Cyclesim.cycle sim
  done;
  Alcotest.(check (list int)) "queue a intact" [ 1; 2; 3; 4 ] (List.rev !got_a);
  Alcotest.(check (list int)) "queue b intact" [ 101; 102; 103; 104 ]
    (List.rev !got_b)

let () =
  Alcotest.run "containers"
    [
      ( "queue",
        [
          Alcotest.test_case "order (all targets)" `Quick test_queue_fifo_order;
          Alcotest.test_case "blocks when empty" `Quick test_queue_blocks_when_empty;
          Alcotest.test_case "capacity" `Quick test_queue_capacity;
          Alcotest.test_case "wraparound" `Quick test_queue_wraparound_long;
          Alcotest.test_case "random vs model" `Quick test_queue_random_vs_model;
          Alcotest.test_case "latency ordering" `Quick test_latency_ordering;
        ] );
      ( "stack",
        [
          Alcotest.test_case "order (all targets)" `Quick test_stack_order;
          Alcotest.test_case "random vs model" `Quick test_stack_random_vs_model;
        ] );
      ( "buffers",
        [
          Alcotest.test_case "read buffer streams" `Quick test_read_buffer_streams;
          Alcotest.test_case "write buffer drains" `Quick test_write_buffer_drains;
        ] );
      ( "vector",
        [ Alcotest.test_case "random access vs model" `Quick test_vector_random_access ] );
      ( "assoc",
        [
          Alcotest.test_case "basic" `Quick test_assoc_basic;
          Alcotest.test_case "collisions & tombstones" `Quick test_assoc_collisions;
          Alcotest.test_case "random vs hashtbl" `Quick test_assoc_random_vs_hashtbl;
        ] );
      ( "sharing",
        [ Alcotest.test_case "two queues, one SRAM" `Quick test_two_queues_shared_sram ] );
    ]
