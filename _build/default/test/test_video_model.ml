open Hwpat_video

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Frame ------------------------------------------------------------ *)

let test_frame_basics () =
  let f = Frame.create ~width:4 ~height:3 ~depth:8 in
  check_int "width" 4 (Frame.width f);
  check_int "height" 3 (Frame.height f);
  check_int "pixels" 12 (Frame.pixels f);
  Frame.set f ~x:2 ~y:1 200;
  check_int "get back" 200 (Frame.get f ~x:2 ~y:1);
  Alcotest.check_raises "depth enforced"
    (Invalid_argument "Frame.set: 256 exceeds 8-bit depth") (fun () ->
      Frame.set f ~x:0 ~y:0 256);
  Alcotest.check_raises "bounds enforced"
    (Invalid_argument "Frame: (4,0) outside 4x3") (fun () ->
      ignore (Frame.get f ~x:4 ~y:0))

let test_frame_row_major () =
  let f = Frame.init ~width:3 ~height:2 ~depth:8 (fun ~x ~y -> (10 * y) + x) in
  Alcotest.(check (list int)) "stream order" [ 0; 1; 2; 10; 11; 12 ]
    (Frame.to_row_major f);
  let g =
    Frame.of_row_major ~width:3 ~height:2 ~depth:8 [ 0; 1; 2; 10; 11; 12 ]
  in
  check_bool "round trip" true (Frame.equal f g);
  check_int "no diffs" 0 (Frame.diff_count f g);
  Frame.set g ~x:1 ~y:1 99;
  check_int "one diff" 1 (Frame.diff_count f g)

let test_rgb () =
  let px = Frame.rgb ~r:1 ~g:2 ~b:3 in
  check_int "packing" 0x010203 px;
  check_bool "channels" true (Frame.rgb_channels px = (1, 2, 3));
  check_int "luma of grey" 100
    (Frame.grey_of_rgb (Frame.rgb ~r:100 ~g:100 ~b:100))

let test_patterns () =
  let g = Pattern.gradient ~width:8 ~height:8 ~depth:8 in
  check_int "gradient corner" 0 (Frame.get g ~x:0 ~y:0);
  check_int "gradient opposite" 14 (Frame.get g ~x:7 ~y:7);
  let c = Pattern.checkerboard ~cell:2 ~width:8 ~height:8 ~depth:8 () in
  check_int "checker white" 255 (Frame.get c ~x:0 ~y:0);
  check_int "checker black" 0 (Frame.get c ~x:2 ~y:0);
  let r1 = Pattern.random ~seed:5 ~width:8 ~height:8 ~depth:8 () in
  let r2 = Pattern.random ~seed:5 ~width:8 ~height:8 ~depth:8 () in
  check_bool "random deterministic per seed" true (Frame.equal r1 r2);
  let rgb = Pattern.rgb_gradient ~width:4 ~height:4 in
  check_int "rgb depth" 24 (Frame.depth rgb);
  check_bool "ascii render" true (String.length (Frame.to_string g) > 60)

(* --- References ------------------------------------------------------- *)

let test_reference_copy_transform () =
  let f = Pattern.random ~seed:1 ~width:5 ~height:5 ~depth:8 () in
  check_bool "copy equal" true (Frame.equal f (Reference.copy f));
  let inverted = Reference.transform ~f:(fun v -> 255 - v) f in
  check_int "transform applied" (255 - Frame.get f ~x:2 ~y:2)
    (Frame.get inverted ~x:2 ~y:2)

let test_reference_blur () =
  (* A constant frame blurs to the same constant (kernel sums to 16). *)
  let flat = Pattern.constant ~value:77 ~width:6 ~height:5 ~depth:8 in
  let b = Reference.blur flat in
  check_int "interior width" 4 (Frame.width b);
  check_int "interior height" 3 (Frame.height b);
  check_bool "flat stays flat" true
    (List.for_all (fun v -> v = 77) (Frame.to_row_major b))

let test_reference_misc () =
  let f = Frame.of_row_major ~width:3 ~height:1 ~depth:8 [ 5; 7; 9 ] in
  check_int "accumulate" 21 (Reference.accumulate f);
  check_bool "find hit" true (Reference.find ~target:7 f = Some 1);
  check_bool "find miss" true (Reference.find ~target:8 f = None)

(* --- Model containers -------------------------------------------------- *)

let test_model_queue_stack () =
  let q = Hwpat_model.Container.queue ~capacity:2 in
  check_bool "put ok" true (Hwpat_model.Container.put q 1);
  check_bool "put ok" true (Hwpat_model.Container.put q 2);
  check_bool "full rejects" false (Hwpat_model.Container.put q 3);
  check_bool "fifo order" true (Hwpat_model.Container.get q = Some 1);
  let s = Hwpat_model.Container.stack ~capacity:4 in
  ignore (Hwpat_model.Container.put s 1);
  ignore (Hwpat_model.Container.put s 2);
  check_bool "lifo order" true (Hwpat_model.Container.get s = Some 2);
  check_bool "empty" true
    (Hwpat_model.Container.get (Hwpat_model.Container.queue ~capacity:1) = None)

let test_model_buffer_sides () =
  let rb = Hwpat_model.Container.read_buffer ~capacity:4 in
  Alcotest.check_raises "rbuffer client cannot put"
    (Invalid_argument "Model.Container.put: this container is filled by a stream")
    (fun () -> ignore (Hwpat_model.Container.put rb 1));
  check_bool "stream fills" true (Hwpat_model.Container.stream_in rb 5);
  check_bool "client gets" true (Hwpat_model.Container.get rb = Some 5);
  let wb = Hwpat_model.Container.write_buffer ~capacity:4 in
  Alcotest.check_raises "wbuffer client cannot get"
    (Invalid_argument "Model.Container.get: this container is drained by a stream")
    (fun () -> ignore (Hwpat_model.Container.get wb));
  check_bool "client puts" true (Hwpat_model.Container.put wb 7);
  check_bool "stream drains" true (Hwpat_model.Container.stream_out wb = Some 7)

let test_model_vector_assoc () =
  let v = Hwpat_model.Container.vector ~length:4 ~default:0 in
  Hwpat_model.Container.write v 2 42;
  check_int "vector rw" 42 (Hwpat_model.Container.read v 2);
  let a = Hwpat_model.Container.assoc ~slots:2 in
  check_bool "insert" true (Hwpat_model.Container.insert a "x" 1);
  check_bool "insert" true (Hwpat_model.Container.insert a "y" 2);
  check_bool "full rejects new" false (Hwpat_model.Container.insert a "z" 3);
  check_bool "update allowed when full" true (Hwpat_model.Container.insert a "x" 9);
  check_bool "lookup" true (Hwpat_model.Container.lookup a "x" = Some 9);
  check_bool "delete" true (Hwpat_model.Container.delete a "y");
  check_int "occupancy" 1 (Hwpat_model.Container.occupancy a)

(* --- Model iterators and algorithms ------------------------------------ *)

let test_model_random_iterator () =
  let v = Hwpat_model.Container.vector ~length:3 ~default:0 in
  let it = Hwpat_model.Iterator.random_of_vector v in
  Hwpat_model.Iterator.write it 10;
  Hwpat_model.Iterator.inc it;
  Hwpat_model.Iterator.write it 11;
  Hwpat_model.Iterator.index it 0;
  check_int "read back" 10 (Hwpat_model.Iterator.read it);
  Hwpat_model.Iterator.inc it;
  check_int "after inc" 11 (Hwpat_model.Iterator.read it);
  Hwpat_model.Iterator.dec it;
  check_int "after dec" 10 (Hwpat_model.Iterator.read it);
  check_bool "not at end" true (not (Hwpat_model.Iterator.at_end it));
  Hwpat_model.Iterator.index it 3;
  check_bool "at end" true (Hwpat_model.Iterator.at_end it)

let test_model_algorithms () =
  let src = Hwpat_model.Iterator.input_of_list [ 1; 2; 3; 4 ] in
  let dst, collect = Hwpat_model.Iterator.output_to_list () in
  check_int "copied" 4 (Hwpat_model.Algorithm.copy ~src ~dst ~limit:10);
  Alcotest.(check (list int)) "content" [ 1; 2; 3; 4 ] (collect ());
  let src = Hwpat_model.Iterator.input_of_list [ 1; 2; 3 ] in
  let dst, collect = Hwpat_model.Iterator.output_to_list () in
  ignore (Hwpat_model.Algorithm.transform ~f:(fun v -> v * 2) ~src ~dst ~limit:10);
  Alcotest.(check (list int)) "doubled" [ 2; 4; 6 ] (collect ());
  let dst, collect = Hwpat_model.Iterator.output_to_list () in
  check_int "filled" 3 (Hwpat_model.Algorithm.fill ~dst ~value:9 ~count:3);
  Alcotest.(check (list int)) "nines" [ 9; 9; 9 ] (collect ());
  check_bool "find" true
    (Hwpat_model.Algorithm.find
       ~src:(Hwpat_model.Iterator.input_of_list [ 5; 6; 7 ])
       ~target:6 ~limit:10
    = Some 1);
  check_int "accumulate" 18
    (Hwpat_model.Algorithm.accumulate
       ~src:(Hwpat_model.Iterator.input_of_list [ 5; 6; 7 ])
       ~count:3)

(* The model blur (structured like the hardware) must equal the direct
   2-D reference on random frames: a cross-validation of both. *)
let test_model_blur_matches_reference () =
  List.iter
    (fun seed ->
      let f = Pattern.random ~seed ~width:9 ~height:7 ~depth:8 () in
      let a = Hwpat_model.Algorithm.blur_frame f in
      let b = Reference.blur f in
      if not (Frame.equal a b) then
        Alcotest.failf "seed %d: model blur diverges from reference (%d diffs)"
          seed (Frame.diff_count a b))
    [ 0; 1; 2; 3; 4 ]

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let props =
  [
    prop "model copy preserves any stream" 100
      QCheck.(list_of_size Gen.(int_range 0 40) (int_bound 255))
      (fun data ->
        let src = Hwpat_model.Iterator.input_of_list data in
        let dst, collect = Hwpat_model.Iterator.output_to_list () in
        ignore
          (Hwpat_model.Algorithm.copy ~src ~dst ~limit:(List.length data));
        collect () = data);
    prop "model blur equals reference on random frames" 25
      QCheck.(pair (int_range 3 12) (int_range 3 12))
      (fun (w, h) ->
        let f = Pattern.random ~seed:(w + (h * 31)) ~width:w ~height:h ~depth:8 () in
        Frame.equal (Hwpat_model.Algorithm.blur_frame f) (Reference.blur f));
    prop "queue model is a bounded FIFO" 200
      QCheck.(list_of_size Gen.(int_range 0 30) (int_bound 1))
      (fun ops ->
        let q = Hwpat_model.Container.queue ~capacity:4 in
        let reference = Queue.create () in
        List.for_all
          (fun op ->
            if op = 0 then begin
              let accepted = Hwpat_model.Container.put q 1 in
              let expected = Queue.length reference < 4 in
              if expected then Queue.push 1 reference;
              accepted = expected
            end
            else
              match (Hwpat_model.Container.get q, Queue.take_opt reference) with
              | Some _, Some _ | None, None -> true
              | _ -> false)
          ops);
  ]

let () =
  Alcotest.run "video-model"
    [
      ( "frame",
        [
          Alcotest.test_case "basics" `Quick test_frame_basics;
          Alcotest.test_case "row major" `Quick test_frame_row_major;
          Alcotest.test_case "rgb" `Quick test_rgb;
          Alcotest.test_case "patterns" `Quick test_patterns;
        ] );
      ( "reference",
        [
          Alcotest.test_case "copy/transform" `Quick test_reference_copy_transform;
          Alcotest.test_case "blur" `Quick test_reference_blur;
          Alcotest.test_case "accumulate/find" `Quick test_reference_misc;
        ] );
      ( "model containers",
        [
          Alcotest.test_case "queue/stack" `Quick test_model_queue_stack;
          Alcotest.test_case "buffer sides" `Quick test_model_buffer_sides;
          Alcotest.test_case "vector/assoc" `Quick test_model_vector_assoc;
        ] );
      ( "model iterators/algorithms",
        [
          Alcotest.test_case "random iterator" `Quick test_model_random_iterator;
          Alcotest.test_case "algorithms" `Quick test_model_algorithms;
          Alcotest.test_case "blur matches reference" `Quick
            test_model_blur_matches_reference;
        ] );
      ("properties", props);
    ]
