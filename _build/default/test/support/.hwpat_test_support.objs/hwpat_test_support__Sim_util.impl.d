test/support/sim_util.ml: Bits Circuit Cyclesim Hwpat_containers Hwpat_rtl Printf
