(* Tests for the extension features: the histogram algorithm over the
   random iterator, binary image labelling, and the shared-SRAM wiring
   helpers. *)

open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_iterators
open Hwpat_algorithms
open Hwpat_test_support.Sim_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- RTL histogram ----------------------------------------------------- *)

(* Pixels come from a queue the testbench fills; bins live in a BRAM
   vector. After done_, the testbench reads the bins back through the
   same vector port. *)
let histogram_harness ~pixel_width ~count =
  let bins_len = 1 lsl pixel_width in
  let hist = Histogram.create ~pixel_width ~bin_width:16 ~count () in
  let src_it, put_ack =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let q =
          Queue_c.over_fifo ~depth:64 ~width:pixel_width
            {
              Container_intf.get_req;
              put_req = input "put_req" 1;
              put_data = input "put_data" pixel_width;
            }
        in
        (q, q.Container_intf.put_ack))
      hist.Histogram.src_driver
  in
  (* The bins live behind one random iterator. While the algorithm
     runs, it owns the iterator; once halted, the testbench inspects
     the bins through the same iterator by ORing its own index/read
     requests into the driver. *)
  let tb_read_req = input "tb_read_req" 1 in
  let tb_addr = input "tb_addr" pixel_width in
  let d = hist.Histogram.bin_driver in
  let merged =
    {
      d with
      Iterator_intf.index_req = d.Iterator_intf.index_req |: input "tb_index_req" 1;
      index_pos =
        mux2 (input "tb_sel" 1) (uresize tb_addr pixel_width)
          d.Iterator_intf.index_pos;
      read_req = d.Iterator_intf.read_req |: tb_read_req;
    }
  in
  let rit =
    Random_iterator.create ~length:bins_len
      ~vector:(Vector_c.over_bram ~length:bins_len ~width:16)
      merged
  in
  let bins_it = rit.Random_iterator.iterator in
  hist.Histogram.connect ~src:src_it ~bins:bins_it;
  let c =
    Circuit.create_exn ~name:"hist_harness"
      [
        ("put_ack", put_ack);
        ("done", hist.Histogram.done_);
        ("processed", hist.Histogram.processed);
        ("bin_read_ack", bins_it.Iterator_intf.read_ack);
        ("bin_read_data", bins_it.Iterator_intf.read_data);
        ("bin_index_ack", bins_it.Iterator_intf.index_ack);
      ]
  in
  Cyclesim.create c

let test_histogram_rtl_vs_model () =
  let pixel_width = 4 in
  Random.init 77;
  let data = List.init 24 (fun _ -> Random.int 16) in
  let sim = histogram_harness ~pixel_width ~count:(List.length data) in
  List.iter
    (fun n -> set sim n ~width:1 0)
    [ "put_req"; "tb_read_req"; "tb_index_req"; "tb_sel" ];
  set sim "put_data" ~width:pixel_width 0;
  set sim "tb_addr" ~width:pixel_width 0;
  Cyclesim.cycle sim;
  List.iter (fun v -> ignore (seq_put sim ~width:pixel_width v)) data;
  ignore (cycles_until ~timeout:5000 sim "done");
  Cyclesim.settle sim;
  check_int "all pixels processed" (List.length data) (out_int sim "processed");
  (* Model result. *)
  let bins_model = Hwpat_model.Container.vector ~length:16 ~default:0 in
  ignore
    (Hwpat_model.Algorithm.histogram
       ~src:(Hwpat_model.Iterator.input_of_list data)
       ~bins:bins_model ~count:(List.length data));
  (* Read back each bin through the (now idle) random iterator. *)
  for bin = 0 to 15 do
    set sim "tb_sel" ~width:1 1;
    set sim "tb_addr" ~width:pixel_width bin;
    set sim "tb_index_req" ~width:1 1;
    ignore (cycles_until sim "bin_index_ack");
    set sim "tb_index_req" ~width:1 0;
    Cyclesim.cycle sim;
    set sim "tb_read_req" ~width:1 1;
    ignore (cycles_until sim "bin_read_ack");
    let v = out_int sim "bin_read_data" in
    set sim "tb_read_req" ~width:1 0;
    Cyclesim.cycle sim;
    check_int
      (Printf.sprintf "bin %d" bin)
      (Hwpat_model.Container.read bins_model bin)
      v
  done

(* --- Model histogram property ------------------------------------------ *)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let histogram_props =
  [
    prop "model histogram counts every element" 200
      QCheck.(list_of_size Gen.(int_range 0 64) (int_bound 15))
      (fun data ->
        let bins = Hwpat_model.Container.vector ~length:16 ~default:0 in
        let n =
          Hwpat_model.Algorithm.histogram
            ~src:(Hwpat_model.Iterator.input_of_list data)
            ~bins ~count:(List.length data)
        in
        let total = ref 0 in
        for i = 0 to 15 do
          total := !total + Hwpat_model.Container.read bins i
        done;
        n = List.length data && !total = List.length data
        && List.for_all
             (fun v ->
               Hwpat_model.Container.read bins v
               = List.length (List.filter (Int.equal v) data))
             data);
  ]

(* --- Binary image labelling --------------------------------------------- *)

let frame_of_strings rows =
  let h = List.length rows and w = String.length (List.hd rows) in
  Hwpat_video.Frame.init ~width:w ~height:h ~depth:8 (fun ~x ~y ->
      if (List.nth rows y).[x] = '#' then 255 else 0)

let count_components frame =
  let labelled = Hwpat_model.Algorithm.label_frame frame in
  List.fold_left max 0 (Hwpat_video.Frame.to_row_major labelled)

let test_labelling_components () =
  check_int "two bars" 2
    (count_components (frame_of_strings [ "##..##"; "##..##" ]));
  check_int "single blob" 1
    (count_components (frame_of_strings [ "####"; "#..#"; "####" ]));
  check_int "empty image" 0 (count_components (frame_of_strings [ "...."; "...." ]));
  (* A 'U' shape whose arms merge at the bottom: the equivalence table
     must union the two provisional labels. *)
  check_int "U merges" 1
    (count_components (frame_of_strings [ "#..#"; "#..#"; "####" ]));
  (* Diagonals do not connect under 4-connectivity. *)
  check_int "diagonal separate" 2
    (count_components (frame_of_strings [ "#."; ".#" ]));
  (* Checkerboard: every foreground pixel isolated. *)
  check_int "checkerboard" 8
    (count_components (frame_of_strings [ "#.#.#"; ".#.#."; "#.#.#" ]))

let test_labelling_consistency () =
  (* Pixels in the same component share a label; pixels in different
     components never do. Verified against a reference flood fill. *)
  let frame =
    frame_of_strings [ "##...##."; "#..#..#."; "#..####."; "...#...." ]
  in
  let labelled = Hwpat_model.Algorithm.label_frame frame in
  let module F = Hwpat_video.Frame in
  let w = F.width frame and h = F.height frame in
  (* Flood fill reference. *)
  let comp = Array.make_matrix h w 0 in
  let next = ref 0 in
  let rec fill x y id =
    if
      x >= 0 && x < w && y >= 0 && y < h
      && F.get frame ~x ~y <> 0
      && comp.(y).(x) = 0
    then begin
      comp.(y).(x) <- id;
      fill (x + 1) y id;
      fill (x - 1) y id;
      fill x (y + 1) id;
      fill x (y - 1) id
    end
  in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if F.get frame ~x ~y <> 0 && comp.(y).(x) = 0 then begin
        incr next;
        fill x y !next
      end
    done
  done;
  (* Same-partition check in both directions. *)
  for y0 = 0 to h - 1 do
    for x0 = 0 to w - 1 do
      for y1 = 0 to h - 1 do
        for x1 = 0 to w - 1 do
          let ours_same =
            F.get labelled ~x:x0 ~y:y0 = F.get labelled ~x:x1 ~y:y1
          in
          let ref_same = comp.(y0).(x0) = comp.(y1).(x1) in
          if F.get frame ~x:x0 ~y:y0 <> 0 && F.get frame ~x:x1 ~y:y1 <> 0 then
            check_bool "partitions agree" ref_same ours_same
        done
      done
    done
  done

let labelling_props =
  [
    prop "labelling matches flood fill on random frames" 50
      QCheck.(pair (int_range 2 10) (int_range 2 10))
      (fun (w, h) ->
        let frame =
          Hwpat_video.Frame.init ~width:w ~height:h ~depth:8 (fun ~x ~y ->
              if (x * 31 + y * 17 + (w * h)) mod 3 = 0 then 255 else 0)
        in
        let labelled = Hwpat_model.Algorithm.label_frame frame in
        let module F = Hwpat_video.Frame in
        (* Adjacency check: 4-neighbours that are both foreground share
           a label. *)
        let ok = ref true in
        for y = 0 to h - 1 do
          for x = 0 to w - 1 do
            if F.get frame ~x ~y <> 0 then begin
              if x + 1 < w && F.get frame ~x:(x + 1) ~y <> 0 then
                ok :=
                  !ok && F.get labelled ~x ~y = F.get labelled ~x:(x + 1) ~y;
              if y + 1 < h && F.get frame ~x ~y:(y + 1) <> 0 then
                ok :=
                  !ok && F.get labelled ~x ~y = F.get labelled ~x ~y:(y + 1);
              ok := !ok && F.get labelled ~x ~y > 0
            end
            else ok := !ok && F.get labelled ~x ~y = 0
          done
        done;
        !ok);
  ]


(* --- RTL binary image labelling ----------------------------------------- *)

let label_harness ~image_width ~image_height =
  let lbl =
    Label.create ~width:8 ~label_bits:8 ~image_width ~image_height ()
  in
  let src_it, put_ack =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let q =
          Queue_c.over_fifo ~depth:256 ~width:8
            {
              Container_intf.get_req;
              put_req = input "put_req" 1;
              put_data = input "put_data" 8;
            }
        in
        (q, q.Container_intf.put_ack))
      lbl.Label.src_driver
  in
  let dst =
    Queue_c.over_fifo ~depth:256 ~width:8
      {
        Container_intf.get_req = input "get_req" 1;
        put_req = Seq_iterator.fused_put_req lbl.Label.dst_driver;
        put_data = lbl.Label.dst_driver.Iterator_intf.write_data;
      }
  in
  let dst_it = Seq_iterator.output dst lbl.Label.dst_driver in
  lbl.Label.connect ~src:src_it ~dst:dst_it;
  let c =
    Circuit.create_exn ~name:"label_harness"
      [
        ("put_ack", put_ack);
        ("get_ack", dst.Container_intf.get_ack);
        ("get_data", dst.Container_intf.get_data);
        ("done", lbl.Label.done_);
        ("labels_used", lbl.Label.labels_used);
      ]
  in
  Cyclesim.create c

let run_rtl_label frame =
  let module F = Hwpat_video.Frame in
  let w = F.width frame and h = F.height frame in
  let sim = label_harness ~image_width:w ~image_height:h in
  set sim "put_req" ~width:1 0;
  set sim "get_req" ~width:1 0;
  set sim "put_data" ~width:8 0;
  Cyclesim.cycle sim;
  (* Feed the whole frame; the input queue is deep enough to decouple
     the stream from the labelling FSM. *)
  List.iter
    (fun v -> ignore (seq_put ~timeout:20000 sim ~width:8 (min v 255)))
    (F.to_row_major frame);
  (* Drain exactly W*H labels. *)
  let labels =
    List.init (w * h) (fun _ -> fst (seq_get ~timeout:20000 sim))
  in
  Cyclesim.settle sim;
  let used = out_int sim "labels_used" in
  (F.of_row_major ~width:w ~height:h ~depth:8 labels, used)

let test_rtl_label_matches_model () =
  let images =
    [
      frame_of_strings [ "##..##"; "##..##" ];
      frame_of_strings [ "#..#"; "#..#"; "####" ];
      frame_of_strings [ "#.#.#"; ".#.#."; "#.#.#" ];
      frame_of_strings [ "......"; "......" ];
      frame_of_strings [ "######"; "######" ];
      frame_of_strings [ "##...##."; "#..#..#."; "#..####."; "...#...." ];
    ]
  in
  List.iteri
    (fun i frame ->
      let rtl, used = run_rtl_label frame in
      let model = Hwpat_model.Algorithm.label_frame frame in
      let model8 =
        Hwpat_video.Frame.of_row_major
          ~width:(Hwpat_video.Frame.width model)
          ~height:(Hwpat_video.Frame.height model)
          ~depth:8
          (Hwpat_video.Frame.to_row_major model)
      in
      if not (Hwpat_video.Frame.equal rtl model8) then
        Alcotest.failf "image %d: RTL labels differ from model\nmodel:\n%s\nrtl:\n%s"
          i
          (Hwpat_video.Frame.to_string model8)
          (Hwpat_video.Frame.to_string rtl);
      let expected_used =
        List.fold_left max 0 (Hwpat_video.Frame.to_row_major model)
      in
      check_int (Printf.sprintf "image %d component count" i) expected_used used)
    images

let test_rtl_label_random_frames () =
  for seed = 1 to 4 do
    let frame =
      Hwpat_video.Frame.init ~width:7 ~height:6 ~depth:8 (fun ~x ~y ->
          if (x * 13 + y * 7 + seed) mod 3 = 0 then 255 else 0)
    in
    let rtl, _ = run_rtl_label frame in
    let model = Hwpat_model.Algorithm.label_frame frame in
    let same =
      Hwpat_video.Frame.to_row_major rtl
      = Hwpat_video.Frame.to_row_major model
    in
    if not same then Alcotest.failf "seed %d: RTL label mismatch" seed
  done

let () =
  Alcotest.run "extensions"
    [
      ( "histogram",
        Alcotest.test_case "rtl vs model" `Quick test_histogram_rtl_vs_model
        :: histogram_props );
      ( "labelling",
        [
          Alcotest.test_case "component counts" `Quick test_labelling_components;
          Alcotest.test_case "partition consistency" `Quick
            test_labelling_consistency;
        ]
        @ labelling_props );
      ( "rtl labelling",
        [
          Alcotest.test_case "matches model" `Quick test_rtl_label_matches_model;
          Alcotest.test_case "random frames" `Quick test_rtl_label_random_frames;
        ] );
    ]
