lib/devices/sram_arbiter.mli: Hwpat_rtl Signal
