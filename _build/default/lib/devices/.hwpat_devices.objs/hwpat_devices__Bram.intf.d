lib/devices/bram.mli: Hwpat_rtl Signal
