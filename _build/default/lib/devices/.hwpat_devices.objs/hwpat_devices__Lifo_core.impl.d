lib/devices/lifo_core.ml: Hwpat_rtl Signal Util
