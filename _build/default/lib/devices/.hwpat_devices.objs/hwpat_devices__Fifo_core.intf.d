lib/devices/fifo_core.mli: Hwpat_rtl Signal
