lib/devices/line_buffer.mli: Hwpat_rtl Signal
