lib/devices/handshake.ml: Hwpat_rtl Signal
