lib/devices/sram.ml: Fsm Handshake Hwpat_rtl Signal Util
