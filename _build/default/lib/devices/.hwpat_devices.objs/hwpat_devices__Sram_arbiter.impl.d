lib/devices/sram_arbiter.ml: Hwpat_rtl Signal Sram
