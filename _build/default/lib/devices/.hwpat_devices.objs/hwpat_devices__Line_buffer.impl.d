lib/devices/line_buffer.ml: Hwpat_rtl Signal Util
