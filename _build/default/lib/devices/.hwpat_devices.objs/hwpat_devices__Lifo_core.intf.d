lib/devices/lifo_core.mli: Hwpat_rtl Signal
