lib/devices/fifo_core.ml: Hwpat_rtl Signal Util
