lib/devices/sram.mli: Hwpat_rtl Signal
