lib/devices/handshake.mli: Hwpat_rtl Signal
