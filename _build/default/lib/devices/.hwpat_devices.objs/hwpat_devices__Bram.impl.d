lib/devices/bram.ml: Hwpat_rtl Printf Signal
