open Hwpat_rtl

(** Two-client arbiter for a shared external SRAM.

    The paper lists "automatic generation of arbitration logic for
    shared physical resources (e.g. RAM)" as a benefit of the
    metaprogramming approach; this is that generated logic. The arbiter
    grants the SRAM to one client at a time, holds the grant until the
    access completes, and alternates priority (least recently served
    wins ties) so neither stream starves. *)

type client = {
  req : Signal.t;
  we : Signal.t;
  addr : Signal.t;
  wr_data : Signal.t;
}

type grant = {
  ack : Signal.t;      (** routed from the SRAM to the granted client *)
  rd_data : Signal.t;  (** shared read bus *)
}

type t = { a : grant; b : grant }

val create :
  ?name:string ->
  words:int ->
  width:int ->
  wait_states:int ->
  a:client ->
  b:client ->
  unit ->
  t
(** Instantiates the shared {!Sram} internally. Client address width
    must be [Util.address_bits words]. *)
