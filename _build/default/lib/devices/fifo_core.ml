open Hwpat_rtl
open Hwpat_rtl.Signal

type t = {
  rd_data : Signal.t;
  rd_valid : Signal.t;
  empty : Signal.t;
  full : Signal.t;
  count : Signal.t;
}

let create ?(name = "fifo") ~depth ~width ~wr_en ~wr_data ~rd_en () =
  if not (Util.is_power_of_two depth) then
    invalid_arg "Fifo_core.create: depth must be a power of two";
  if Signal.width wr_data <> width then
    invalid_arg "Fifo_core.create: wr_data width mismatch";
  let abits = Util.address_bits depth in
  let cbits = abits + 1 in
  let mem = create_memory ~size:depth ~width ~name:(name ^ "_ram") () in
  let count_w = wire cbits in
  let count = reg count_w -- (name ^ "_count") in
  let empty = (count ==: zero cbits) -- (name ^ "_empty") in
  let full = (count ==: of_int ~width:cbits depth) -- (name ^ "_full") in
  let do_write = wr_en &: ~:full in
  let do_read = rd_en &: ~:empty in
  let wr_ptr =
    reg_fb ~width:abits (fun q -> mux2 do_write (q +: one abits) q)
    -- (name ^ "_wr_ptr")
  in
  let rd_ptr =
    reg_fb ~width:abits (fun q -> mux2 do_read (q +: one abits) q)
    -- (name ^ "_rd_ptr")
  in
  mem_write_port mem ~enable:do_write ~addr:wr_ptr ~data:wr_data;
  (* Read-first block RAM: a word is only popped when count >= 1, which
     guarantees it was written at least one cycle earlier. *)
  let rd_data = mem_read_sync mem ~enable:do_read ~addr:rd_ptr () -- (name ^ "_rd_data") in
  let rd_valid = reg do_read -- (name ^ "_rd_valid") in
  count_w
  <== (count
      +: mux2 do_write (one cbits) (zero cbits)
      -: mux2 do_read (one cbits) (zero cbits));
  { rd_data; rd_valid; empty; full; count }
