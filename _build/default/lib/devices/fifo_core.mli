open Hwpat_rtl

(** Synchronous FIFO core, the on-chip equivalent of the FIFO
    primitives "commonly found in FPGA designs" (§3.4).

    Storage is a block RAM (synchronous read), so read data appears on
    [rd_data] one cycle after [rd_en] is accepted, flagged by
    [rd_valid]. Asserting [rd_en] while [empty], or [wr_en] while
    [full], is ignored by the hardware. Simultaneous read and write are
    supported. *)

type t = {
  rd_data : Signal.t;
  rd_valid : Signal.t;  (** one-cycle pulse: [rd_data] is the popped word *)
  empty : Signal.t;
  full : Signal.t;
  count : Signal.t;     (** current occupancy, [address_bits depth + 1] wide *)
}

val create :
  ?name:string ->
  depth:int ->
  width:int ->
  wr_en:Signal.t ->
  wr_data:Signal.t ->
  rd_en:Signal.t ->
  unit ->
  t
(** [depth] must be a power of two. *)
