open Hwpat_rtl

(** Request/acknowledge handshake helpers shared by the device,
    container and iterator layers.

    Convention: the requester holds [req] high until it sees [ack] high
    in the same cycle; data is exchanged in the cycle where both are
    high. [ack] may be combinational (single-cycle devices) or arrive
    several cycles later (external memories). *)

type t = { req : Signal.t; ack : Signal.t }

val fire : t -> Signal.t
(** High in the cycle the transaction completes ([req &: ack]). *)

val rising : Signal.t -> Signal.t
(** One-cycle pulse on a 0→1 transition of the argument. *)

val sticky : set:Signal.t -> clear:Signal.t -> Signal.t
(** A set/clear flag register; clear wins when both fire. *)

val pulse_counter : width:int -> enable:Signal.t -> clear:Signal.t -> Signal.t
(** Counts cycles where [enable] is high; synchronously cleared. *)
