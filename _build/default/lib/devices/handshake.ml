open Hwpat_rtl
open Hwpat_rtl.Signal

type t = { req : Signal.t; ack : Signal.t }

let fire t = t.req &: t.ack

let rising s =
  if Signal.width s <> 1 then invalid_arg "Handshake.rising: signal must be 1 bit";
  s &: ~:(reg s)

let sticky ~set ~clear =
  if Signal.width set <> 1 || Signal.width clear <> 1 then
    invalid_arg "Handshake.sticky: signals must be 1 bit";
  reg_fb ~width:1 (fun q -> mux2 clear gnd (mux2 set vdd q))

let pulse_counter ~width ~enable ~clear =
  reg_fb ~width (fun q -> mux2 clear (zero width) (mux2 enable (q +: one width) q))
