open Hwpat_rtl
open Hwpat_rtl.Signal

type t = {
  rd_data : Signal.t;
  rd_valid : Signal.t;
  empty : Signal.t;
  full : Signal.t;
  count : Signal.t;
}

let create ?(name = "lifo") ~depth ~width ~push_en ~push_data ~pop_en () =
  if not (Util.is_power_of_two depth) then
    invalid_arg "Lifo_core.create: depth must be a power of two";
  if Signal.width push_data <> width then
    invalid_arg "Lifo_core.create: push_data width mismatch";
  let abits = Util.address_bits depth in
  let cbits = abits + 1 in
  let mem = create_memory ~size:depth ~width ~name:(name ^ "_ram") () in
  let sp_w = wire cbits in
  let sp = reg sp_w -- (name ^ "_sp") in
  let empty = (sp ==: zero cbits) -- (name ^ "_empty") in
  let full = (sp ==: of_int ~width:cbits depth) -- (name ^ "_full") in
  let do_push = push_en &: ~:full in
  let do_pop = pop_en &: ~:push_en &: ~:empty in
  let top_addr = select (sp -: one cbits) ~high:(abits - 1) ~low:0 in
  let push_addr = select sp ~high:(abits - 1) ~low:0 in
  mem_write_port mem ~enable:do_push ~addr:push_addr ~data:push_data;
  (* Popping reads the top of stack. The word at [sp-1] was pushed at
     least one cycle before the pop can observe sp > 0, so read-first
     block RAM returns the committed value. *)
  let rd_data = mem_read_sync mem ~enable:do_pop ~addr:top_addr () -- (name ^ "_rd_data") in
  let rd_valid = reg do_pop -- (name ^ "_rd_valid") in
  sp_w <== mux2 do_push (sp +: one cbits) (mux2 do_pop (sp -: one cbits) sp);
  { rd_data; rd_valid; empty; full; count = sp }
