open Hwpat_rtl
open Hwpat_rtl.Signal

type client = { req : Signal.t; we : Signal.t; addr : Signal.t; wr_data : Signal.t }
type grant = { ack : Signal.t; rd_data : Signal.t }
type t = { a : grant; b : grant }

let create ?(name = "arb") ~words ~width ~wait_states ~a ~b () =
  (* granted: 0 = none, 1 = client a, 2 = client b. *)
  let granted_w = wire 2 in
  let granted = reg granted_w -- (name ^ "_grant") in
  let idle = granted ==: zero 2 in
  let grant_a_now = idle &: a.req in
  (* Alternating priority: remember who was served last; on
     simultaneous requests the other client wins. *)
  let last_served_w = wire 1 in
  let last_served = reg last_served_w -- (name ^ "_last") in
  let a_wins = a.req &: (~:(b.req) |: last_served) in
  let grant_a = grant_a_now &: a_wins in
  let grant_b = idle &: b.req &: ~:grant_a in
  let sel_b = granted ==: of_int ~width:2 2 in
  let active_req = ~:idle in
  let sram =
    Sram.create ~name:(name ^ "_sram") ~words ~width ~wait_states ~req:active_req
      ~we:(mux2 sel_b b.we a.we)
      ~addr:(mux2 sel_b b.addr a.addr)
      ~wr_data:(mux2 sel_b b.wr_data a.wr_data)
      ()
  in
  let release = sram.Sram.ack in
  granted_w
  <== mux2 release (zero 2)
        (mux2 grant_a (of_int ~width:2 1) (mux2 grant_b (of_int ~width:2 2) granted));
  last_served_w
  <== mux2 (release &: ~:sel_b) gnd (mux2 (release &: sel_b) vdd last_served);
  let ack_a = release &: ~:sel_b in
  let ack_b = release &: sel_b in
  {
    a = { ack = ack_a; rd_data = sram.Sram.rd_data };
    b = { ack = ack_b; rd_data = sram.Sram.rd_data };
  }
