open Hwpat_rtl
open Hwpat_rtl.Signal

type port_in = {
  enable : Signal.t;
  write : Signal.t;
  addr : Signal.t;
  wdata : Signal.t;
}

type t = { rdata_a : Signal.t; rdata_b : Signal.t }

let check_port tag (p : port_in) ~width =
  if Signal.width p.enable <> 1 || Signal.width p.write <> 1 then
    invalid_arg (Printf.sprintf "Bram.create: port %s controls must be 1 bit" tag);
  if Signal.width p.wdata <> width then
    invalid_arg (Printf.sprintf "Bram.create: port %s wdata width mismatch" tag)

let create ?(name = "dpram") ~size ~width ~a ~b () =
  check_port "a" a ~width;
  check_port "b" b ~width;
  let mem = create_memory ~size ~width ~name:(name ^ "_ram") () in
  let attach tag (p : port_in) =
    mem_write_port mem ~enable:(p.enable &: p.write) ~addr:p.addr ~data:p.wdata;
    mem_read_sync mem
      ~enable:(p.enable &: ~:(p.write))
      ~addr:p.addr ()
    -- (name ^ "_rdata_" ^ tag)
  in
  let rdata_a = attach "a" a in
  let rdata_b = attach "b" b in
  { rdata_a; rdata_b }
