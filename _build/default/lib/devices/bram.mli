open Hwpat_rtl

(** True dual-port block RAM device: two fully independent ports, each
    with synchronous write and synchronous read (read-first on
    write/read collisions, like the underlying {!Signal} memory).

    {!Hwpat_containers.Mem_target.bram} wraps single-port inference
    behind a handshake; this device exposes the raw two-port primitive
    for designs that dual-port a buffer between producer and consumer
    domains (e.g. a ping-pong frame store). *)

type port_in = {
  enable : Signal.t;   (** port active this cycle *)
  write : Signal.t;    (** 1 = write [wdata], 0 = read *)
  addr : Signal.t;
  wdata : Signal.t;
}

type t = {
  rdata_a : Signal.t;  (** valid the cycle after an enabled read on A *)
  rdata_b : Signal.t;
}

val create :
  ?name:string -> size:int -> width:int -> a:port_in -> b:port_in -> unit -> t
(** Writes on both ports to the same address in the same cycle are a
    design error; simulation applies port A then port B (B wins), as
    real block RAM leaves the result undefined. *)
