open Hwpat_rtl

(** External asynchronous SRAM with its on-FPGA access controller.

    Models the XSB-300E board SRAM: the array itself is marked as an
    external memory (not counted by technology mapping); the controller
    FSM, which is real FPGA logic, enforces [wait_states] cycles of
    address stability per access (see {!Board.sram_wait_states}).

    Protocol: the client raises [req] with [we]/[addr]/[wr_data] stable
    and holds them until [ack] pulses. An access takes
    [wait_states + 3] cycles (request registration, address phase,
    acknowledge). On a read, [rd_data] is valid from the
    [ack] cycle and holds until the next read completes. *)

type t = {
  ack : Signal.t;
  rd_data : Signal.t;
  busy : Signal.t;  (** high from request acceptance until [ack] *)
}

val create :
  ?name:string ->
  words:int ->
  width:int ->
  wait_states:int ->
  req:Signal.t ->
  we:Signal.t ->
  addr:Signal.t ->
  wr_data:Signal.t ->
  unit ->
  t

val access_cycles : wait_states:int -> int
(** Cycles from [req] to [ack] inclusive. *)
