open Hwpat_rtl

(** Synchronous LIFO (stack) core.

    Same conventions as {!Fifo_core}: block-RAM storage, popped data
    appears one cycle after [pop_en] with a [rd_valid] pulse. [push_en]
    and [pop_en] must not be asserted in the same cycle (push wins;
    container wrappers serialise operations). *)

type t = {
  rd_data : Signal.t;
  rd_valid : Signal.t;
  empty : Signal.t;
  full : Signal.t;
  count : Signal.t;
}

val create :
  ?name:string ->
  depth:int ->
  width:int ->
  push_en:Signal.t ->
  push_data:Signal.t ->
  pop_en:Signal.t ->
  unit ->
  t
(** [depth] must be a power of two. *)
