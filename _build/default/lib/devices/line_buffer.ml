open Hwpat_rtl
open Hwpat_rtl.Signal

type t = {
  top : Signal.t;
  mid : Signal.t;
  bot : Signal.t;
  col_valid : Signal.t;
  warm : Signal.t;
  col : Signal.t;
  row : Signal.t;
}

let create ?(name = "lbuf") ~image_width ~max_rows ~width ~px_en ~px_data () =
  if image_width < 3 then invalid_arg "Line_buffer.create: image_width must be >= 3";
  if Signal.width px_data <> width then
    invalid_arg "Line_buffer.create: px_data width mismatch";
  let xbits = Util.address_bits image_width in
  let ybits = Util.bits_to_represent max_rows in
  (* Column / row walkers over the incoming stream. *)
  let x_w = wire xbits in
  let x = reg x_w -- (name ^ "_x") in
  let at_line_end = x ==: of_int ~width:xbits (image_width - 1) in
  x_w <== mux2 px_en (mux2 at_line_end (zero xbits) (x +: one xbits)) x;
  let y =
    reg_fb ~width:ybits (fun q -> mux2 (px_en &: at_line_end) (q +: one ybits) q)
    -- (name ^ "_y")
  in
  (* Two line delays in block RAM. Read-first semantics let us read the
     previous rows and overwrite the same address in one access. *)
  let line1 = create_memory ~size:image_width ~width ~name:(name ^ "_line1") () in
  let line2 = create_memory ~size:image_width ~width ~name:(name ^ "_line2") () in
  let line1_old = mem_read_sync line1 ~enable:px_en ~addr:x () in
  let line2_old = mem_read_sync line2 ~enable:px_en ~addr:x () in
  mem_write_port line1 ~enable:px_en ~addr:x ~data:px_data;
  (* line2 must receive the value line1 held *before* this push; the
     async read provides it within the same cycle. *)
  mem_write_port line2 ~enable:px_en ~addr:x ~data:(mem_read_async line1 ~addr:x);
  let col_valid = reg px_en -- (name ^ "_col_valid") in
  let bot = reg ~enable:px_en px_data -- (name ^ "_bot") in
  (* Register the warm flag with the presented column so the last pixel
     of row 1 is not misreported as a full window. *)
  let warm =
    reg ~enable:px_en (y >=: of_int ~width:ybits 2) -- (name ^ "_warm")
  in
  {
    top = line2_old -- (name ^ "_top");
    mid = line1_old -- (name ^ "_mid");
    bot;
    col_valid;
    warm;
    col = reg ~enable:px_en x -- (name ^ "_col");
    row = y;
  }
