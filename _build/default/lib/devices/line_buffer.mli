open Hwpat_rtl

(** Three-line video buffer.

    The paper's blur example maps its [rbuffer] container "over a
    special one ... a 3-line buffer structured to provide 3 pixels in a
    column for each access", which lets the 3×3 convolution produce one
    filtered pixel per clock. This is that device: two block-RAM line
    delays plus the incoming pixel.

    Push one pixel per access; one cycle later [col_valid] pulses and
    [top]/[mid]/[bot] hold the three pixels of the current column
    (rows y-2, y-1 and y). The column is only a full window once two
    complete rows have been seen ([warm]). *)

type t = {
  top : Signal.t;
  mid : Signal.t;
  bot : Signal.t;
  col_valid : Signal.t;
  warm : Signal.t;     (** two full rows buffered; window outputs valid *)
  col : Signal.t;      (** column index of the presented window centre *)
  row : Signal.t;      (** row index of the incoming pixel stream *)
}

val create :
  ?name:string ->
  image_width:int ->
  max_rows:int ->
  width:int ->
  px_en:Signal.t ->
  px_data:Signal.t ->
  unit ->
  t
(** [image_width] pixels per line ([>= 3]); [max_rows] bounds the row
    counter width. *)
