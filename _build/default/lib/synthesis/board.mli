(** Characterisation of the target platform.

    The paper evaluates on the XESS XSB-300E prototyping board: a
    Xilinx Spartan-IIE XC2S300E FPGA plus a 256K×16 asynchronous SRAM.
    These constants stand in for the board data sheet; the technology
    parameters calibrate {!Techmap} and {!Timing}. *)

type t = {
  name : string;
  fpga : string;
  luts_available : int;      (** 4-input LUTs *)
  ffs_available : int;
  brams_available : int;     (** 4 Kbit block RAMs *)
  bram_bits : int;           (** capacity of one block RAM *)
  bram_max_width : int;      (** widest single-BRAM data port *)
  sram_words : int;          (** external SRAM depth *)
  sram_width : int;          (** external SRAM data width *)
  sram_access_ns : float;    (** asynchronous access time *)
  lut_delay_ns : float;
  route_delay_ns : float;    (** average net delay per logic level *)
  carry_delay_ns : float;    (** per-bit carry chain delay *)
  clk_to_q_ns : float;
  setup_ns : float;
  bram_access_ns : float;    (** clock-to-data of a block RAM read *)
}

val xsb300e : t

val default : t
(** Alias for {!xsb300e}. *)

val sram_wait_states : t -> clock_mhz:float -> int
(** Wait states needed to access the external SRAM at a given clock. *)

val pp : Format.formatter -> t -> unit
