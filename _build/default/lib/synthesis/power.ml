open Hwpat_rtl

type t = {
  toggles_per_cycle : float;
  dynamic_mw : float;
  static_mw : float;
  total_mw : float;
}

type monitor = {
  sim : Cyclesim.t;
  tracked : Signal.t array;
  mutable previous : Bits.t option array;
  mutable toggles : int;
  mutable cycles : int;
}

let monitor sim =
  let tracked =
    Array.of_list
      (List.filter
         (fun s ->
           match Signal.prim s with
           | Signal.Const _ -> false
           | _ -> true)
         (Circuit.signals (Cyclesim.circuit sim)))
  in
  { sim; tracked; previous = Array.make (Array.length tracked) None; toggles = 0; cycles = 0 }

let sample m =
  Array.iteri
    (fun i s ->
      let v = Cyclesim.peek m.sim s in
      (match m.previous.(i) with
      | Some p -> m.toggles <- m.toggles + Bits.popcount (Bits.logxor p v)
      | None -> ());
      m.previous.(i) <- Some v)
    m.tracked;
  m.cycles <- m.cycles + 1

(* Energy per toggle for an average Spartan-II net: ~ 2.5 pF * (1.8 V)^2
   rounded into a per-toggle pJ figure. *)
let pj_per_toggle = 4.0
let static_mw_const = 30.0

let estimate ?(clock_mhz = 50.0) m =
  let cycles = max 1 (m.cycles - 1) in
  let toggles_per_cycle = float_of_int m.toggles /. float_of_int cycles in
  (* mW = pJ/cycle * cycles/s * 1e-9 *)
  let dynamic_mw = toggles_per_cycle *. pj_per_toggle *. clock_mhz *. 1e-3 in
  {
    toggles_per_cycle;
    dynamic_mw;
    static_mw = static_mw_const;
    total_mw = dynamic_mw +. static_mw_const;
  }

let pp fmt t =
  Format.fprintf fmt "%.1f toggles/cycle, %.2f mW dynamic + %.2f mW static = %.2f mW"
    t.toggles_per_cycle t.dynamic_mw t.static_mw t.total_mw
