open Hwpat_rtl

(** Static timing estimation.

    Computes the longest register-to-register combinational path with a
    per-primitive delay model (LUT + average routing per logic level,
    carry chains at per-bit cost) and converts it to a maximum clock
    frequency for the target board. *)

type t = {
  critical_path_ns : float;  (** comb path only, excluding clk-to-q/setup *)
  logic_levels : int;        (** LUT levels on the critical path *)
  fmax_mhz : float;
}

val analyze : ?board:Board.t -> Circuit.t -> t

val node_delay_ns : ?board:Board.t -> Signal.t -> float
(** Delay contributed by one node (0 for pure wiring). *)

val pp : Format.formatter -> t -> unit
