open Hwpat_rtl

type resources = { luts : int; ffs : int; brams : int; lutram_luts : int }

let zero = { luts = 0; ffs = 0; brams = 0; lutram_luts = 0 }

let add a b =
  {
    luts = a.luts + b.luts;
    ffs = a.ffs + b.ffs;
    brams = a.brams + b.brams;
    lutram_luts = a.lutram_luts + b.lutram_luts;
  }

(* Cost of a balanced 4-ary reduction tree over [n] leaves. *)
let rec reduction_tree_luts n =
  if n <= 1 then 0
  else
    let level = (n + 3) / 4 in
    level + reduction_tree_luts level

let node_luts s =
  let w = Signal.width s in
  match Signal.prim s with
  | Signal.Const _ | Signal.Input _ | Signal.Wire _ | Signal.Concat _
  | Signal.Select _ | Signal.Not _ ->
    0
  | Signal.Op2 (op, a, _) -> (
    let aw = Signal.width a in
    match op with
    | Signal.And | Signal.Or | Signal.Xor -> w
    | Signal.Add | Signal.Sub -> w (* carry chain, one LUT per bit *)
    | Signal.Lt -> aw (* carry-chain comparator *)
    | Signal.Eq ->
      (* Per-bit XNOR packed 4/LUT, then an AND reduction tree. *)
      let leaves = (aw + 3) / 4 in
      leaves + reduction_tree_luts leaves
    | Signal.Mul -> aw * aw (* LUT array multiplier; Spartan-II has no DSPs *))
  | Signal.Mux { cases; _ } ->
    let n = List.length cases in
    if n <= 1 then 0
    else
      (* (n-1) 2:1 muxes per bit; two 2:1 muxes pack into one LUT4 +
         its F5 mux, so halve (rounding up). *)
      w * (((n - 1) + 1) / 2)
  | Signal.Reg _ -> 0
  | Signal.Mem_read_async _ | Signal.Mem_read_sync _ -> 0

let node_ffs s =
  match Signal.prim s with Signal.Reg _ -> Signal.width s | _ -> 0

type mem_mapping = Block_ram | Distributed

(* A memory maps to block RAM when any port reads synchronously —
   distributed RAM cannot register its output inside the primitive. *)
let memory_mapping circuit m =
  let has_sync_read =
    List.exists
      (fun s ->
        match Signal.prim s with
        | Signal.Mem_read_sync { memory; _ } ->
          Signal.memory_uid memory = Signal.memory_uid m
        | _ -> false)
      (Circuit.signals circuit)
  in
  if has_sync_read then Block_ram else Distributed

let async_read_ports circuit m =
  List.length
    (List.filter
       (fun s ->
         match Signal.prim s with
         | Signal.Mem_read_async { memory; _ } ->
           Signal.memory_uid memory = Signal.memory_uid m
         | _ -> false)
       (Circuit.signals circuit))

let memory_resources (board : Board.t) circuit m =
  let bits = Signal.memory_size m * Signal.memory_width m in
  match memory_mapping circuit m with
  | Block_ram ->
    let by_bits = (bits + board.bram_bits - 1) / board.bram_bits in
    let by_width =
      (Signal.memory_width m + board.bram_max_width - 1) / board.bram_max_width
    in
    { zero with brams = max by_bits by_width }
  | Distributed ->
    (* 16x1 RAM per LUT; each extra read port replicates the array. *)
    let ports = max 1 (async_read_ports circuit m) in
    let ram_luts = ports * ((bits + 15) / 16) in
    { zero with luts = ram_luts; lutram_luts = ram_luts }

let estimate ?(board = Board.default) circuit =
  let logic =
    List.fold_left
      (fun acc s -> add acc { zero with luts = node_luts s; ffs = node_ffs s })
      zero (Circuit.signals circuit)
  in
  List.fold_left
    (fun acc m ->
      if Signal.memory_is_external m then acc
      else add acc (memory_resources board circuit m))
    logic (Circuit.memories circuit)

let utilization ~(board : Board.t) r =
  float_of_int r.luts /. float_of_int board.luts_available

let pp fmt r =
  Format.fprintf fmt "%d LUTs (%d as RAM), %d FFs, %d BRAMs" r.luts r.lutram_luts
    r.ffs r.brams
