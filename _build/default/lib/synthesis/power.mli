open Hwpat_rtl

(** Activity-based dynamic power estimation.

    Counts bit toggles across every netlist node over a simulation run
    and converts the average switching activity into milliwatts with a
    simple CV²f model: each toggling bit charges one average net
    capacitance per transition. Static power is a board constant. *)

type t = {
  toggles_per_cycle : float;
  dynamic_mw : float;
  static_mw : float;
  total_mw : float;
}

type monitor

val monitor : Cyclesim.t -> monitor
(** Attach to a simulator. Call {!sample} once per simulated cycle. *)

val sample : monitor -> unit

val estimate : ?clock_mhz:float -> monitor -> t
(** Average power over the sampled cycles at the given clock
    (default 50 MHz). *)

val pp : Format.formatter -> t -> unit
