open Hwpat_rtl

type t = { critical_path_ns : float; logic_levels : int; fmax_mhz : float }

(* Logic levels a node adds on a path through it. *)
let node_levels s =
  match Signal.prim s with
  | Signal.Const _ | Signal.Input _ | Signal.Wire _ | Signal.Concat _
  | Signal.Select _ | Signal.Not _ | Signal.Reg _ | Signal.Mem_read_sync _ ->
    0
  | Signal.Op2 (op, _, _) -> (
    match op with
    | Signal.And | Signal.Or | Signal.Xor | Signal.Add | Signal.Sub | Signal.Lt
    | Signal.Eq ->
      1
    | Signal.Mul -> max 1 (Signal.width s / 2))
  | Signal.Mux { cases; _ } ->
    let n = List.length cases in
    if n <= 1 then 0
    else
      (* levels of a 2:1 tree, two levels packing into one LUT *)
      let rec log2 n = if n <= 1 then 0 else 1 + log2 ((n + 1) / 2) in
      max 1 ((log2 n + 1) / 2)
  | Signal.Mem_read_async _ -> 1

let node_delay_ns ?(board = Board.default) s =
  let levels = node_levels s in
  let base = float_of_int levels *. (board.lut_delay_ns +. board.route_delay_ns) in
  match Signal.prim s with
  | Signal.Op2 ((Signal.Add | Signal.Sub | Signal.Lt), a, _) ->
    base +. (float_of_int (Signal.width a) *. board.carry_delay_ns)
  | Signal.Mem_read_async _ -> base +. 0.5 (* RAM decode overhead *)
  | _ -> base

let comb_deps s =
  match Signal.prim s with
  | Signal.Reg _ | Signal.Mem_read_sync _ -> []
  | Signal.Mem_read_async { addr; _ } -> [ addr ]
  | _ -> Signal.deps s

let analyze ?(board = Board.default) circuit =
  let arrival = Hashtbl.create 997 in
  let levels = Hashtbl.create 997 in
  (* Schedule order guarantees deps are computed first. *)
  List.iter
    (fun s ->
      let dep_arrival =
        List.fold_left
          (fun acc d ->
            max acc (try Hashtbl.find arrival (Signal.uid d) with Not_found -> 0.0))
          0.0 (comb_deps s)
      in
      let dep_levels =
        List.fold_left
          (fun acc d ->
            max acc (try Hashtbl.find levels (Signal.uid d) with Not_found -> 0))
          0 (comb_deps s)
      in
      Hashtbl.replace arrival (Signal.uid s) (dep_arrival +. node_delay_ns ~board s);
      Hashtbl.replace levels (Signal.uid s) (dep_levels + node_levels s))
    (Circuit.signals circuit);
  (* Paths end where data is captured: register D / enable / clear,
     memory write and sync-read inputs, and circuit outputs. *)
  let endpoint_arrivals = ref [ 0.0 ] in
  let endpoint_levels = ref [ 0 ] in
  let note s =
    (match Hashtbl.find_opt arrival (Signal.uid s) with
    | Some a -> endpoint_arrivals := a :: !endpoint_arrivals
    | None -> ());
    match Hashtbl.find_opt levels (Signal.uid s) with
    | Some l -> endpoint_levels := l :: !endpoint_levels
    | None -> ()
  in
  List.iter
    (fun s ->
      match Signal.prim s with
      | Signal.Reg _ | Signal.Mem_read_sync _ -> List.iter note (Signal.deps s)
      | _ -> ())
    (Circuit.signals circuit);
  List.iter (fun (_, s) -> note s) (Circuit.outputs circuit);
  let critical = List.fold_left max 0.0 !endpoint_arrivals in
  let logic_levels = List.fold_left max 0 !endpoint_levels in
  let period = board.clk_to_q_ns +. critical +. board.setup_ns in
  let fmax = 1000.0 /. period in
  { critical_path_ns = critical; logic_levels; fmax_mhz = fmax }

let pp fmt t =
  Format.fprintf fmt "critical path %.2f ns (%d levels), fmax %.1f MHz"
    t.critical_path_ns t.logic_levels t.fmax_mhz
