open Hwpat_rtl

type t = { design : string; ffs : int; luts : int; brams : int; clk_mhz : float }

let of_circuit ?(board = Board.default) circuit =
  (* Constant propagation first, as any synthesis front-end would. *)
  let circuit = Optimize.circuit circuit in
  let r = Techmap.estimate ~board circuit in
  let timing = Timing.analyze ~board circuit in
  {
    design = Circuit.name circuit;
    ffs = r.Techmap.ffs;
    luts = r.Techmap.luts;
    brams = r.Techmap.brams;
    clk_mhz = timing.Timing.fmax_mhz;
  }

type comparison = { name : string; pattern : t; custom : t }

let compare_pair ?(board = Board.default) ~name pattern custom =
  { name; pattern = of_circuit ~board pattern; custom = of_circuit ~board custom }

let overhead_percent c =
  if c.custom.luts = 0 then 0.0
  else
    100.0
    *. (float_of_int c.pattern.luts -. float_of_int c.custom.luts)
    /. float_of_int c.custom.luts

let table3_header =
  Printf.sprintf "%-12s | %11s | %11s | %7s | %11s" "Design" "FFs" "LUTs" "BRAM"
    "clk MHz"

let table3_row c =
  Printf.sprintf "%-12s | %5d/%-5d | %5d/%-5d | %3d/%-3d | %5.0f/%-5.0f" c.name
    c.pattern.ffs c.custom.ffs c.pattern.luts c.custom.luts c.pattern.brams
    c.custom.brams c.pattern.clk_mhz c.custom.clk_mhz

let pp fmt t =
  Format.fprintf fmt "%s: %d FFs, %d LUTs, %d BRAMs, %.1f MHz" t.design t.ffs
    t.luts t.brams t.clk_mhz
