open Hwpat_rtl

(** Per-design synthesis reports and pattern-vs-custom comparison
    tables in the format of the paper's Table 3. *)

type t = {
  design : string;
  ffs : int;
  luts : int;
  brams : int;
  clk_mhz : float;
}

val of_circuit : ?board:Board.t -> Circuit.t -> t
(** Run {!Hwpat_rtl.Optimize.circuit}, then {!Techmap.estimate} and
    {!Timing.analyze}. *)

type comparison = {
  name : string;
  pattern : t;
  custom : t;
}

val compare_pair : ?board:Board.t -> name:string -> Circuit.t -> Circuit.t -> comparison
(** [compare_pair ~name pattern custom]. *)

val overhead_percent : comparison -> float
(** LUT overhead of the pattern version over the custom version, in
    percent (0 when equal; negative when the pattern version is
    smaller). *)

val table3_row : comparison -> string
(** "design | FFs p/c | LUTs p/c | BRAM p/c | MHz p/c" row. *)

val table3_header : string

val pp : Format.formatter -> t -> unit
