lib/synthesis/resource_report.ml: Board Circuit Format Hwpat_rtl Optimize Printf Techmap Timing
