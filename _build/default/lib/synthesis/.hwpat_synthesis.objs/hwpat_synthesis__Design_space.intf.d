lib/synthesis/design_space.mli:
