lib/synthesis/board.ml: Format
