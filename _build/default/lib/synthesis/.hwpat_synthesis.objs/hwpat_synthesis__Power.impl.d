lib/synthesis/power.ml: Array Bits Circuit Cyclesim Format Hwpat_rtl List Signal
