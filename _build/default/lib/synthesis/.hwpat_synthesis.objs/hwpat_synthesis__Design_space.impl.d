lib/synthesis/design_space.ml: List Printf String
