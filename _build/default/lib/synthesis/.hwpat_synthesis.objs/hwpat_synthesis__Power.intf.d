lib/synthesis/power.mli: Cyclesim Format Hwpat_rtl
