lib/synthesis/timing.mli: Board Circuit Format Hwpat_rtl Signal
