lib/synthesis/resource_report.mli: Board Circuit Format Hwpat_rtl
