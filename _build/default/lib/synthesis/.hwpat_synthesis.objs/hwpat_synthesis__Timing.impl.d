lib/synthesis/timing.ml: Board Circuit Format Hashtbl Hwpat_rtl List Signal
