lib/synthesis/techmap.mli: Board Circuit Format Hwpat_rtl Signal
