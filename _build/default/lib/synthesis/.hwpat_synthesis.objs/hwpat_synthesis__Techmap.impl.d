lib/synthesis/techmap.ml: Board Circuit Format Hwpat_rtl List Signal
