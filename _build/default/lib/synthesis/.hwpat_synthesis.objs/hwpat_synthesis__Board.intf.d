lib/synthesis/board.mli: Format
