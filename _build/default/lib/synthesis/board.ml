type t = {
  name : string;
  fpga : string;
  luts_available : int;
  ffs_available : int;
  brams_available : int;
  bram_bits : int;
  bram_max_width : int;
  sram_words : int;
  sram_width : int;
  sram_access_ns : float;
  lut_delay_ns : float;
  route_delay_ns : float;
  carry_delay_ns : float;
  clk_to_q_ns : float;
  setup_ns : float;
  bram_access_ns : float;
}

(* Spartan-IIE XC2S300E: 3072 slices = 6144 LUT4 + 6144 FFs, 16 block
   RAMs of 4 Kbit. Timing numbers are -6 speed grade ballpark figures. *)
let xsb300e =
  {
    name = "XESS XSB-300E";
    fpga = "Xilinx Spartan-IIE XC2S300E";
    luts_available = 6144;
    ffs_available = 6144;
    brams_available = 16;
    bram_bits = 4096;
    bram_max_width = 16;
    sram_words = 256 * 1024;
    sram_width = 16;
    sram_access_ns = 10.0;
    lut_delay_ns = 0.7;
    route_delay_ns = 0.9;
    carry_delay_ns = 0.06;
    clk_to_q_ns = 1.3;
    setup_ns = 0.7;
    bram_access_ns = 3.0;
  }

let default = xsb300e

let sram_wait_states t ~clock_mhz =
  if clock_mhz <= 0.0 then invalid_arg "Board.sram_wait_states: clock must be positive";
  let period_ns = 1000.0 /. clock_mhz in
  (* The address must be stable for the full access time; the first
     clock period is the cycle that presents the address. *)
  let cycles = ceil (t.sram_access_ns /. period_ns) in
  max 0 (int_of_float cycles - 1)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%s (%s)@ %d LUTs, %d FFs, %d block RAMs x %d bits@ SRAM %dKx%d @@ %.1f ns@]"
    t.name t.fpga t.luts_available t.ffs_available t.brams_available t.bram_bits
    (t.sram_words / 1024) t.sram_width t.sram_access_ns
