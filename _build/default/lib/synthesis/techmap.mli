(** Technology mapping estimation.

    Maps a netlist onto 4-input LUTs, flip-flops and block RAMs of the
    target {!Board.t} with a deterministic per-primitive cost model.

    Model summary (documented so results are reproducible):
    - pure wiring ([Wire], [Concat], [Select], constants, inputs) and
      inverters cost nothing — inverters are absorbed into LUT inputs,
      which is what makes the paper's "iterators are wrappers that
      dissolve" observation measurable;
    - 2-input logic costs one LUT per bit, add/sub/compare use the
      carry chain at one LUT per bit, equality uses a 4-ary reduction
      tree over per-bit XNORs packed four to a LUT;
    - an n-way mux costs [(n-1)] 2:1 levels per bit, with pairs of
      2:1 muxes packed into single LUTs;
    - registers cost one FF per bit (enable and synchronous clear map
      to the FF's CE/R pins for free);
    - a memory with any synchronous read port maps to block RAM
      ([ceil(bits / bram_bits)], at least one per
      [ceil(width / bram_max_width)] slice of the data bus); a memory
      with only asynchronous reads maps to distributed LUT RAM at one
      LUT per 16 bits plus its read multiplexers. *)

open Hwpat_rtl

type resources = {
  luts : int;
  ffs : int;
  brams : int;
  lutram_luts : int;  (** subset of [luts] spent as distributed RAM *)
}

val zero : resources
val add : resources -> resources -> resources

val node_luts : Signal.t -> int
(** LUT cost of a single combinational node under the model above. *)

val estimate : ?board:Board.t -> Circuit.t -> resources

val utilization : board:Board.t -> resources -> float
(** Fraction of the board's LUTs consumed (0.0–…). *)

val pp : Format.formatter -> resources -> unit
