open Hwpat_rtl

(** Uniform container interfaces (the functional interface of §3.4).

    Containers expose operation ports with a request/acknowledge
    handshake: the client raises a request and holds it (with its
    operand ports stable) until the matching [ack] pulses. [ack] is a
    one-cycle pulse; returned data is valid during the [ack] cycle.
    This uniformity is what lets one algorithm FSM drive a FIFO-backed
    buffer (acks in 1–2 cycles) and an SRAM-backed buffer (acks after
    arbitration and wait states) without modification.

    {v
              |  t0   |  t1   |  t2   |  t3   |  t4
    get_req   |___----|-------|-------|____...      held until ack
    get_ack   |_______|_______|----___|             one-cycle pulse
    get_data  |  xxx  |  xxx  | VALID | stable      until the next get
    v}

    Returned data remains stable from the ack until the next operation
    of the same kind completes — algorithms rely on this to wire an
    input iterator's data straight into an output iterator. *)

(** Sequential containers: stacks, queues, read/write buffers. *)
type seq = {
  get_ack : Signal.t;
  get_data : Signal.t;
  put_ack : Signal.t;
  empty : Signal.t;
  full : Signal.t;
  size : Signal.t;
}

(** Client-side request signals for a sequential container. *)
type seq_driver = {
  get_req : Signal.t;
  put_req : Signal.t;
  put_data : Signal.t;
}

val seq_driver_stub : width:int -> seq_driver
(** All-zero requests (for containers used on one side only). *)

(** Random-access containers (vector). *)
type random = {
  read_ack : Signal.t;
  read_data : Signal.t;
  write_ack : Signal.t;
  length : Signal.t;
}

type random_driver = {
  read_req : Signal.t;
  write_req : Signal.t;
  addr : Signal.t;
  write_data : Signal.t;
}

(** Associative containers. *)
type assoc = {
  lookup_ack : Signal.t;
  lookup_found : Signal.t;
  lookup_data : Signal.t;
  insert_ack : Signal.t;
  insert_ok : Signal.t;
  delete_ack : Signal.t;
  delete_found : Signal.t;
  occupancy : Signal.t;
}

type assoc_driver = {
  lookup_req : Signal.t;
  insert_req : Signal.t;
  delete_req : Signal.t;
  key : Signal.t;
  value_in : Signal.t;
}

(** {1 Abstract memory port}

    The adapter between a container FSM and its physical target — the
    piece the metaprogramming layer swaps when the designer changes the
    aggregate's implementation. *)

type mem_port = {
  mem_ack : Signal.t;    (** pulses once per completed access *)
  mem_rdata : Signal.t;  (** valid during [mem_ack] of a read *)
}

type mem_request = {
  mem_req : Signal.t;
  mem_we : Signal.t;
  mem_addr : Signal.t;
  mem_wdata : Signal.t;
}
