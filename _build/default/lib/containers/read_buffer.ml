open Hwpat_rtl
open Hwpat_rtl.Signal
open Container_intf

type stream_in = { px_valid : Signal.t; px_data : Signal.t }

type t = { seq : Container_intf.seq; px_ready : Signal.t }

(* An rbuffer is a queue whose put side is the external stream: the
   producer's valid is the put request, and the put ack is the stream
   ready. Only the get side is exported. *)

let of_queue build ~stream =
  let driver =
    { get_req = wire 1; put_req = stream.px_valid; put_data = stream.px_data }
  in
  (driver, build driver)

let finish ~get_req (driver, (q : Container_intf.seq)) =
  driver.get_req <== get_req;
  { seq = q; px_ready = q.put_ack }

let over_fifo ?(name = "rbuffer") ~depth ~width ~stream ~get_req () =
  finish ~get_req (of_queue (Queue_c.over_fifo ~name ~depth ~width) ~stream)

let over_mem ?(name = "rbuffer") ~depth ~width ~target ~stream ~get_req () =
  finish ~get_req (of_queue (Queue_c.over_mem ~name ~depth ~width ~target) ~stream)

let over_bram ?(name = "rbuffer") ~depth ~width ~stream ~get_req () =
  finish ~get_req (of_queue (Queue_c.over_bram ~name ~depth ~width) ~stream)

let over_sram ?(name = "rbuffer") ~depth ~width ~wait_states ~stream ~get_req () =
  finish ~get_req
    (of_queue (Queue_c.over_sram ~name ~depth ~width ~wait_states) ~stream)

type column_t = {
  col_seq : Container_intf.seq;
  col_px_ready : Signal.t;
  col_warm : Signal.t;
}

let over_line_buffer ?(name = "rbuffer3") ~image_width ~max_rows ~width ~stream
    ~get_req () =
  (* A get consumes one pixel from the stream and, once two rows are
     buffered, returns the 3-pixel column containing it. Cold columns
     (warm-up) consume pixels without acking, so the algorithm simply
     keeps its request asserted. *)
  let px_taken = wire 1 in
  let lb =
    Hwpat_devices.Line_buffer.create ~name ~image_width ~max_rows ~width
      ~px_en:px_taken ~px_data:stream.px_data ()
  in
  let open Hwpat_devices.Line_buffer in
  (* One pixel in flight: while the presented column settles (the cycle
     after a take), do not take another, or a held request would eat
     pixels faster than it can observe acks. *)
  px_taken <== (get_req &: stream.px_valid &: ~:(lb.col_valid));
  let ack = lb.col_valid &: lb.warm in
  let data = concat_msb [ lb.top; lb.mid; lb.bot ] in
  {
    col_seq =
      {
        get_ack = ack;
        get_data = data;
        put_ack = gnd;
        empty = ~:(stream.px_valid);
        full = gnd;
        size = zero 1;
      };
    (* Ready must mirror the actual take (gated on the settle cycle),
       or the producer would advance past pixels that were never
       consumed. *)
    col_px_ready = px_taken;
    col_warm = lb.warm;
  }
