
(** The vector container: random read/write by index, over block RAM
    or external SRAM. Simultaneous read and write requests are
    serialised (read first). *)

val over_mem :
  ?name:string -> length:int -> width:int ->
  target:(Container_intf.mem_request -> Container_intf.mem_port) ->
  Container_intf.random_driver -> Container_intf.random

val over_bram :
  ?name:string -> length:int -> width:int -> Container_intf.random_driver ->
  Container_intf.random

val over_sram :
  ?name:string -> length:int -> width:int -> wait_states:int ->
  Container_intf.random_driver -> Container_intf.random
