open Hwpat_rtl
open Container_intf

type stream_out = { out_valid : Signal.t; out_data : Signal.t }

type t = { seq : Container_intf.seq; stream : stream_out }

(* A wbuffer is a queue whose get side is driven by the downstream
   consumer: its ready level is the standing get request. *)

let of_queue build ~out_ready ~put_req ~put_data =
  let driver = { get_req = out_ready; put_req; put_data } in
  let q = build driver in
  {
    seq = q;
    stream = { out_valid = q.get_ack; out_data = q.get_data };
  }

let over_fifo ?(name = "wbuffer") ~depth ~width ~out_ready ~put_req ~put_data () =
  of_queue (Queue_c.over_fifo ~name ~depth ~width) ~out_ready ~put_req ~put_data

let over_mem ?(name = "wbuffer") ~depth ~width ~target ~out_ready ~put_req
    ~put_data () =
  of_queue (Queue_c.over_mem ~name ~depth ~width ~target) ~out_ready ~put_req
    ~put_data

let over_bram ?(name = "wbuffer") ~depth ~width ~out_ready ~put_req ~put_data () =
  of_queue (Queue_c.over_bram ~name ~depth ~width) ~out_ready ~put_req ~put_data

let over_sram ?(name = "wbuffer") ~depth ~width ~wait_states ~out_ready ~put_req
    ~put_data () =
  of_queue
    (Queue_c.over_sram ~name ~depth ~width ~wait_states)
    ~out_ready ~put_req ~put_data
