
(** The stack container (LIFO discipline) over its legal targets:
    an on-chip LIFO core, block RAM, or external SRAM. Same handshake
    conventions as {!Queue_c}. *)

val over_lifo :
  ?name:string -> depth:int -> width:int -> Container_intf.seq_driver ->
  Container_intf.seq
(** Wrapper over the on-chip LIFO core; [depth] must be a power of
    two. *)

val over_mem :
  ?name:string -> depth:int -> width:int ->
  target:(Container_intf.mem_request -> Container_intf.mem_port) ->
  Container_intf.seq_driver -> Container_intf.seq
(** Generated stack-pointer FSM over an abstract memory port. *)

val over_bram :
  ?name:string -> depth:int -> width:int -> Container_intf.seq_driver ->
  Container_intf.seq

val over_sram :
  ?name:string -> depth:int -> width:int -> wait_states:int ->
  Container_intf.seq_driver -> Container_intf.seq
