open Hwpat_rtl

(** The write buffer (wbuffer) of the paper's example: a sink-only
    sequential container written by iterators and drained by an
    external consumer (the VGA coder).

    Drain side: when the consumer holds [out_ready], buffered words are
    presented as [out_valid]/[out_data] pulses (one word per pulse; the
    consumer must capture during the pulse). *)

type stream_out = { out_valid : Signal.t; out_data : Signal.t }

type t = {
  seq : Container_intf.seq;  (** only the put side is meaningful *)
  stream : stream_out;
}

val over_fifo :
  ?name:string -> depth:int -> width:int -> out_ready:Signal.t ->
  put_req:Signal.t -> put_data:Signal.t -> unit -> t

val over_mem :
  ?name:string -> depth:int -> width:int ->
  target:(Container_intf.mem_request -> Container_intf.mem_port) ->
  out_ready:Signal.t -> put_req:Signal.t -> put_data:Signal.t -> unit -> t

val over_bram :
  ?name:string -> depth:int -> width:int -> out_ready:Signal.t ->
  put_req:Signal.t -> put_data:Signal.t -> unit -> t

val over_sram :
  ?name:string -> depth:int -> width:int -> wait_states:int ->
  out_ready:Signal.t -> put_req:Signal.t -> put_data:Signal.t -> unit -> t
