
(** The associative array container: a direct-mapped hash table with
    linear probing, over block RAM or external SRAM.

    Each slot stores a 2-bit slot state (empty / occupied / tombstone),
    the key and the value. Lookup probes from [hash key] until a key
    match or an empty slot; insert updates a matching slot or claims
    the first tombstone/empty slot; delete writes a tombstone so later
    probes keep walking. All three operations follow the standard
    request/ack handshake of {!Container_intf}. *)

val slot_width : key_width:int -> value_width:int -> int
(** Physical word width: [2 + key_width + value_width]. *)

val over_mem :
  ?name:string -> slots:int -> key_width:int -> value_width:int ->
  target:(Container_intf.mem_request -> Container_intf.mem_port) ->
  Container_intf.assoc_driver -> Container_intf.assoc
(** [slots] must be a power of two. The [target] adapter must carry
    words of [slot_width] bits. *)

val over_bram :
  ?name:string -> slots:int -> key_width:int -> value_width:int ->
  Container_intf.assoc_driver -> Container_intf.assoc

val over_sram :
  ?name:string -> slots:int -> key_width:int -> value_width:int ->
  wait_states:int -> Container_intf.assoc_driver -> Container_intf.assoc
