open Hwpat_rtl
open Hwpat_rtl.Signal
open Container_intf

let slot_width ~key_width ~value_width = 2 + key_width + value_width

(* Slot states, stored in the top two bits of each word. *)
let slot_empty = 0
let slot_occupied = 1
let slot_tombstone = 2

let st_idle = 0
let st_probe = 1
let st_store = 2
let st_done = 3

let op_lookup = 0
let op_insert = 1
let op_delete = 2

let over_mem ?(name = "assoc") ~slots ~key_width ~value_width ~target
    (d : assoc_driver) =
  if not (Util.is_power_of_two slots) then
    invalid_arg "Assoc_array.over_mem: slots must be a power of two";
  if Signal.width d.key <> key_width then
    invalid_arg "Assoc_array.over_mem: key width mismatch";
  if Signal.width d.value_in <> value_width then
    invalid_arg "Assoc_array.over_mem: value width mismatch";
  let abits = Util.address_bits slots in
  let w = slot_width ~key_width ~value_width in
  let fsm = Fsm.create ~name:(name ^ "_state") ~states:4 () in
  let in_probe = Fsm.is fsm st_probe in
  let in_store = Fsm.is fsm st_store in
  let in_done = Fsm.is fsm st_done in
  let in_idle = Fsm.is fsm st_idle in
  let port_w = { mem_ack = wire 1; mem_rdata = wire w } in

  (* Operation latch. *)
  let accept = in_idle &: (d.lookup_req |: d.insert_req |: d.delete_req) in
  let op_code =
    mux2 d.lookup_req
      (of_int ~width:2 op_lookup)
      (mux2 d.insert_req (of_int ~width:2 op_insert) (of_int ~width:2 op_delete))
  in
  let op = reg ~enable:accept op_code -- (name ^ "_op") in
  let is_lookup = op ==: of_int ~width:2 op_lookup in
  let is_insert = op ==: of_int ~width:2 op_insert in
  let is_delete = op ==: of_int ~width:2 op_delete in

  (* Probe walker. *)
  let hash = uresize d.key abits in
  let at_ack = in_probe &: port_w.mem_ack in
  let entry = port_w.mem_rdata in
  let entry_state = select entry ~high:(w - 1) ~low:(w - 2) in
  let entry_key = select entry ~high:(w - 3) ~low:value_width in
  let entry_value =
    if value_width > 0 then select entry ~high:(value_width - 1) ~low:0
    else zero 1
  in
  let is_empty_slot = entry_state ==: of_int ~width:2 slot_empty in
  let is_tomb = entry_state ==: of_int ~width:2 slot_tombstone in
  let is_occupied = entry_state ==: of_int ~width:2 slot_occupied in
  let key_match = is_occupied &: (entry_key ==: d.key) in
  let probe_idx =
    Hwpat_devices.Handshake.pulse_counter
      ~width:(abits + 1)
      ~enable:(at_ack &: ~:key_match &: ~:is_empty_slot)
      ~clear:in_idle
    -- (name ^ "_probe_idx")
  in
  let last_probe = probe_idx ==: of_int ~width:(abits + 1) (slots - 1) in
  let advance = at_ack &: ~:key_match &: ~:is_empty_slot &: ~:last_probe in
  let probe_addr =
    reg_fb ~width:abits (fun q ->
        mux2 accept hash (mux2 advance (q +: one abits) q))
    -- (name ^ "_probe_addr")
  in

  (* Insert candidate: the first tombstone seen on the walk. *)
  let cand_take = at_ack &: is_insert &: is_tomb in
  let cand_valid =
    reg_fb ~width:1 (fun q -> mux2 accept gnd (mux2 cand_take vdd q))
    -- (name ^ "_cand_valid")
  in
  let cand_addr =
    reg ~enable:(cand_take &: ~:cand_valid) probe_addr -- (name ^ "_cand_addr")
  in

  (* Decisions out of the probe state. *)
  let lookup_hit = at_ack &: is_lookup &: key_match in
  let lookup_miss = at_ack &: is_lookup &: (is_empty_slot |: last_probe) in
  let insert_update = at_ack &: is_insert &: key_match in
  let insert_new = at_ack &: is_insert &: ~:key_match &: is_empty_slot in
  let insert_exhausted =
    at_ack &: is_insert &: ~:key_match &: ~:is_empty_slot &: last_probe
  in
  let insert_claim_cand = insert_exhausted &: cand_valid in
  let insert_fail = insert_exhausted &: ~:cand_valid in
  let delete_hit = at_ack &: is_delete &: key_match in
  let delete_miss = at_ack &: is_delete &: (is_empty_slot |: last_probe) in
  let to_store = insert_update |: insert_new |: insert_claim_cand |: delete_hit in

  (* Result registers. *)
  let found_r =
    reg ~enable:(lookup_hit |: lookup_miss |: delete_hit |: delete_miss)
      (lookup_hit |: delete_hit)
    -- (name ^ "_found")
  in
  let ok_r =
    reg ~enable:(to_store &: is_insert |: insert_fail) (~:insert_fail)
    -- (name ^ "_ok")
  in
  let data_r = reg ~enable:lookup_hit entry_value -- (name ^ "_data") in

  (* Store phase: where and what to write. *)
  let store_addr =
    reg ~enable:to_store
      (mux2 insert_new
         (mux2 cand_valid cand_addr probe_addr)
         (mux2 insert_claim_cand cand_addr probe_addr))
    -- (name ^ "_store_addr")
  in
  let occupied_word =
    concat_msb
      [
        of_int ~width:2 slot_occupied;
        d.key;
        (if value_width > 0 then d.value_in else zero 1);
      ]
  in
  let tombstone_word = zero w |: sll (uresize (of_int ~width:2 slot_tombstone) w) (w - 2) in
  let store_word =
    reg ~enable:to_store (mux2 is_delete tombstone_word occupied_word)
    -- (name ^ "_store_word")
  in
  let is_new_entry =
    reg ~enable:(at_ack &: is_insert) (insert_new |: insert_claim_cand)
    -- (name ^ "_is_new")
  in

  Fsm.transitions fsm
    [
      (st_idle, [ (accept, st_probe) ]);
      ( st_probe,
        [
          (to_store, st_store);
          (lookup_hit |: lookup_miss |: delete_miss |: insert_fail, st_done);
        ] );
      (st_store, [ (port_w.mem_ack, st_done) ]);
      (st_done, [ (vdd, st_idle) ]);
    ];

  let store_done = in_store &: port_w.mem_ack in
  let cbits = Util.bits_to_represent slots in
  let occupancy =
    reg_fb ~width:cbits (fun q ->
        mux2
          (store_done &: is_insert &: is_new_entry)
          (q +: one cbits)
          (mux2 (store_done &: is_delete) (q -: one cbits) q))
    -- (name ^ "_occupancy")
  in

  let request =
    {
      mem_req = in_probe |: in_store;
      mem_we = in_store;
      mem_addr = mux2 in_store store_addr probe_addr;
      mem_wdata = mux2 in_store store_word (zero w);
    }
  in
  let port = target request in
  port_w.mem_ack <== port.mem_ack;
  port_w.mem_rdata <== port.mem_rdata;

  let done_pulse = in_done in
  {
    lookup_ack = done_pulse &: is_lookup;
    lookup_found = found_r;
    lookup_data = data_r;
    insert_ack = done_pulse &: is_insert;
    insert_ok = ok_r;
    delete_ack = done_pulse &: is_delete;
    delete_found = found_r;
    occupancy;
  }

let over_bram ?(name = "assoc") ~slots ~key_width ~value_width d =
  let w = slot_width ~key_width ~value_width in
  over_mem ~name ~slots ~key_width ~value_width
    ~target:(Mem_target.bram ~name:(name ^ "_bram") ~size:slots ~width:w)
    d

let over_sram ?(name = "assoc") ~slots ~key_width ~value_width ~wait_states d =
  let w = slot_width ~key_width ~value_width in
  over_mem ~name ~slots ~key_width ~value_width
    ~target:
      (Mem_target.sram ~name:(name ^ "_sram") ~words:slots ~width:w ~wait_states)
    d
