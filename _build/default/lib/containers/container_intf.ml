open Hwpat_rtl
open Hwpat_rtl.Signal

type seq = {
  get_ack : Signal.t;
  get_data : Signal.t;
  put_ack : Signal.t;
  empty : Signal.t;
  full : Signal.t;
  size : Signal.t;
}

type seq_driver = {
  get_req : Signal.t;
  put_req : Signal.t;
  put_data : Signal.t;
}

let seq_driver_stub ~width = { get_req = gnd; put_req = gnd; put_data = zero width }

type random = {
  read_ack : Signal.t;
  read_data : Signal.t;
  write_ack : Signal.t;
  length : Signal.t;
}

type random_driver = {
  read_req : Signal.t;
  write_req : Signal.t;
  addr : Signal.t;
  write_data : Signal.t;
}

type assoc = {
  lookup_ack : Signal.t;
  lookup_found : Signal.t;
  lookup_data : Signal.t;
  insert_ack : Signal.t;
  insert_ok : Signal.t;
  delete_ack : Signal.t;
  delete_found : Signal.t;
  occupancy : Signal.t;
}

type assoc_driver = {
  lookup_req : Signal.t;
  insert_req : Signal.t;
  delete_req : Signal.t;
  key : Signal.t;
  value_in : Signal.t;
}

type mem_port = { mem_ack : Signal.t; mem_rdata : Signal.t }

type mem_request = {
  mem_req : Signal.t;
  mem_we : Signal.t;
  mem_addr : Signal.t;
  mem_wdata : Signal.t;
}
