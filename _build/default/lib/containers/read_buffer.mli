open Hwpat_rtl

(** The read buffer (rbuffer) of the paper's example: a source-only
    sequential container filled by an external stream (the video
    decoder) and drained by iterators.

    The fill side follows a valid/ready stream handshake: the producer
    holds [px_valid] with stable [px_data] until [px_ready] is high in
    the same cycle. *)

type stream_in = { px_valid : Signal.t; px_data : Signal.t }

type t = {
  seq : Container_intf.seq;  (** only the get side is meaningful *)
  px_ready : Signal.t;
}

val over_fifo :
  ?name:string -> depth:int -> width:int -> stream:stream_in ->
  get_req:Signal.t -> unit -> t

val over_mem :
  ?name:string -> depth:int -> width:int ->
  target:(Container_intf.mem_request -> Container_intf.mem_port) ->
  stream:stream_in -> get_req:Signal.t -> unit -> t

val over_bram :
  ?name:string -> depth:int -> width:int -> stream:stream_in ->
  get_req:Signal.t -> unit -> t

val over_sram :
  ?name:string -> depth:int -> width:int -> wait_states:int ->
  stream:stream_in -> get_req:Signal.t -> unit -> t

(** The blur example's specialised rbuffer: mapped over the 3-line
    buffer device, a get returns a whole 3-pixel column
    (top & mid & bot concatenated MSB-first, so 3×[width] bits). *)
type column_t = {
  col_seq : Container_intf.seq;
  col_px_ready : Signal.t;
  col_warm : Signal.t;
}

val over_line_buffer :
  ?name:string -> image_width:int -> max_rows:int -> width:int ->
  stream:stream_in -> get_req:Signal.t -> unit -> column_t
