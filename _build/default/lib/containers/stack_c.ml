open Hwpat_rtl
open Hwpat_rtl.Signal
open Container_intf

let over_lifo ?(name = "stack") ~depth ~width (d : seq_driver) =
  let pop_en = wire 1 in
  let lifo =
    Hwpat_devices.Lifo_core.create ~name ~depth ~width
      ~push_en:d.put_req ~push_data:d.put_data ~pop_en ()
  in
  let open Hwpat_devices.Lifo_core in
  let pending =
    reg_fb ~width:1 (fun q -> mux2 pop_en vdd (mux2 lifo.rd_valid gnd q))
    -- (name ^ "_pending")
  in
  pop_en
  <== (d.get_req &: ~:(lifo.empty) &: ~:(d.put_req) &: ~:pending
      &: ~:(lifo.rd_valid));
  {
    get_ack = lifo.rd_valid;
    get_data = lifo.rd_data;
    put_ack = d.put_req &: ~:(lifo.full);
    empty = lifo.empty;
    full = lifo.full;
    size = lifo.count;
  }

let st_idle = 0
let st_get = 1
let st_put = 2

let over_mem ?(name = "stack") ~depth ~width ~target (d : seq_driver) =
  if Signal.width d.put_data <> width then
    invalid_arg "Stack_c.over_mem: put_data width mismatch";
  let abits = Util.address_bits depth in
  let cbits = Util.bits_to_represent depth in
  let fsm = Fsm.create ~name:(name ^ "_state") ~states:3 () in
  let in_get = Fsm.is fsm st_get and in_put = Fsm.is fsm st_put in
  let port_w = { mem_ack = wire 1; mem_rdata = wire width } in
  let done_get = in_get &: port_w.mem_ack in
  let done_put = in_put &: port_w.mem_ack in
  let sp_w = wire cbits in
  let sp = reg sp_w -- (name ^ "_sp") in
  let empty = (sp ==: zero cbits) -- (name ^ "_empty") in
  let full = (sp ==: of_int ~width:cbits depth) -- (name ^ "_full") in
  sp_w <== mux2 done_put (sp +: one cbits) (mux2 done_get (sp -: one cbits) sp);
  Fsm.transitions fsm
    [
      ( st_idle,
        [ (d.get_req &: ~:empty, st_get); (d.put_req &: ~:full, st_put) ] );
      (st_get, [ (port_w.mem_ack, st_idle) ]);
      (st_put, [ (port_w.mem_ack, st_idle) ]);
    ];
  let top = select (sp -: one cbits) ~high:(abits - 1) ~low:0 in
  let push_at = select sp ~high:(abits - 1) ~low:0 in
  let request =
    {
      mem_req = in_get |: in_put;
      mem_we = in_put;
      mem_addr = mux2 in_put push_at top;
      mem_wdata = d.put_data;
    }
  in
  let port = target request in
  port_w.mem_ack <== port.mem_ack;
  port_w.mem_rdata <== port.mem_rdata;
  {
    get_ack = done_get;
    get_data = port.mem_rdata;
    put_ack = done_put;
    empty;
    full;
    size = sp;
  }

let over_bram ?(name = "stack") ~depth ~width d =
  over_mem ~name ~depth ~width
    ~target:(Mem_target.bram ~name:(name ^ "_bram") ~size:depth ~width)
    d

let over_sram ?(name = "stack") ~depth ~width ~wait_states d =
  over_mem ~name ~depth ~width
    ~target:(Mem_target.sram ~name:(name ^ "_sram") ~words:depth ~width ~wait_states)
    d
