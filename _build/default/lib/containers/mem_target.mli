
(** Physical target adapters behind the abstract memory port.

    Each adapter takes the container's {!Container_intf.mem_request}
    and answers with a {!Container_intf.mem_port}. Swapping the adapter
    — on-chip block RAM versus external SRAM behind wait states or an
    arbiter — is exactly the implementation change the paper's §3.3
    scenario performs without touching the model. *)

val bram :
  ?name:string -> size:int -> width:int -> Container_intf.mem_request ->
  Container_intf.mem_port
(** Dual-port block RAM: every access completes in one cycle ([ack]
    pulses the cycle after the request is seen). *)

val sram :
  ?name:string -> words:int -> width:int -> wait_states:int ->
  Container_intf.mem_request -> Container_intf.mem_port
(** A private external SRAM (instantiates {!Hwpat_devices.Sram}). *)

val of_arbiter_grant :
  Hwpat_devices.Sram_arbiter.grant -> Container_intf.mem_port
(** Use one side of a shared, arbitrated SRAM. The caller instantiates
    {!Hwpat_devices.Sram_arbiter} with this container's
    {!Container_intf.mem_request} signals as the client. *)

val to_arbiter_client :
  Container_intf.mem_request -> Hwpat_devices.Sram_arbiter.client
