lib/containers/vector_c.mli: Container_intf
