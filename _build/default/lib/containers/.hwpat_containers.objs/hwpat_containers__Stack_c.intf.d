lib/containers/stack_c.mli: Container_intf
