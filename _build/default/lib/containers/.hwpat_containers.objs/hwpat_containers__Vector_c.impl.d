lib/containers/vector_c.ml: Container_intf Fsm Hwpat_rtl Mem_target Signal Util
