lib/containers/container_intf.mli: Hwpat_rtl Signal
