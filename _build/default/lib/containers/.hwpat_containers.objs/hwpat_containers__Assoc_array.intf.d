lib/containers/assoc_array.mli: Container_intf
