lib/containers/write_buffer.mli: Container_intf Hwpat_rtl Signal
