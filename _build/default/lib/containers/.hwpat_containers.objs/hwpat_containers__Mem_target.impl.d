lib/containers/mem_target.ml: Container_intf Hwpat_devices Hwpat_rtl Signal
