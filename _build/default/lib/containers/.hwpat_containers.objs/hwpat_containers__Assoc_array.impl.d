lib/containers/assoc_array.ml: Container_intf Fsm Hwpat_devices Hwpat_rtl Mem_target Signal Util
