lib/containers/write_buffer.ml: Container_intf Hwpat_rtl Queue_c Signal
