lib/containers/stack_c.ml: Container_intf Fsm Hwpat_devices Hwpat_rtl Mem_target Signal Util
