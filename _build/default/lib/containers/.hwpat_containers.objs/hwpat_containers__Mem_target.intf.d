lib/containers/mem_target.mli: Container_intf Hwpat_devices
