lib/containers/read_buffer.mli: Container_intf Hwpat_rtl Signal
