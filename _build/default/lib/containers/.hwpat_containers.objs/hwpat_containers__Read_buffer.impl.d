lib/containers/read_buffer.ml: Container_intf Hwpat_devices Hwpat_rtl Queue_c Signal
