lib/containers/queue_c.mli: Container_intf
