lib/containers/container_intf.ml: Hwpat_rtl Signal
