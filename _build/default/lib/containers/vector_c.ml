open Hwpat_rtl
open Hwpat_rtl.Signal
open Container_intf

let st_idle = 0
let st_read = 1
let st_write = 2

let over_mem ?(name = "vector") ~length ~width ~target (d : random_driver) =
  if Signal.width d.write_data <> width then
    invalid_arg "Vector_c.over_mem: write_data width mismatch";
  if Signal.width d.addr < Util.address_bits length then
    invalid_arg "Vector_c.over_mem: address too narrow";
  let fsm = Fsm.create ~name:(name ^ "_state") ~states:3 () in
  let in_read = Fsm.is fsm st_read and in_write = Fsm.is fsm st_write in
  let ack_w = wire 1 in
  Fsm.transitions fsm
    [
      (st_idle, [ (d.read_req, st_read); (d.write_req, st_write) ]);
      (st_read, [ (ack_w, st_idle) ]);
      (st_write, [ (ack_w, st_idle) ]);
    ];
  let request =
    {
      mem_req = in_read |: in_write;
      mem_we = in_write;
      mem_addr = select d.addr ~high:(Util.address_bits length - 1) ~low:0;
      mem_wdata = d.write_data;
    }
  in
  let port = target request in
  ack_w <== port.mem_ack;
  {
    read_ack = in_read &: port.mem_ack;
    read_data = port.mem_rdata;
    write_ack = in_write &: port.mem_ack;
    length = of_int ~width:(Util.bits_to_represent length) length;
  }

let over_bram ?(name = "vector") ~length ~width d =
  over_mem ~name ~length ~width
    ~target:(Mem_target.bram ~name:(name ^ "_bram") ~size:length ~width)
    d

let over_sram ?(name = "vector") ~length ~width ~wait_states d =
  over_mem ~name ~length ~width
    ~target:(Mem_target.sram ~name:(name ^ "_sram") ~words:length ~width ~wait_states)
    d
