
(** The queue container, over each legal target of §3.4.

    All builders present the same {!Container_intf.seq} functional
    interface; only the physical substrate differs. Clients follow the
    handshake convention of {!Container_intf}: hold the request and its
    operands until the ack pulse. *)

val over_fifo :
  ?name:string -> depth:int -> width:int -> Container_intf.seq_driver ->
  Container_intf.seq
(** Wrapper over an on-chip FIFO core (the "most efficient
    implementation" in the paper's terms). [depth] must be a power of
    two. Puts ack in the same cycle; gets ack two cycles after the
    request (block-RAM read latency). *)

val over_mem :
  ?name:string -> depth:int -> width:int ->
  target:(Container_intf.mem_request -> Container_intf.mem_port) ->
  Container_intf.seq_driver -> Container_intf.seq
(** The generated circular-buffer FSM of §3.4: begin/end pointer
    registers plus a little state machine driving an abstract memory
    port — block RAM, private SRAM, or an arbitrated shared SRAM
    depending on the {!Mem_target} adapter passed as [target]. *)

val over_bram :
  ?name:string -> depth:int -> width:int -> Container_intf.seq_driver ->
  Container_intf.seq
(** [over_mem] with a private block RAM target. *)

val over_sram :
  ?name:string -> depth:int -> width:int -> wait_states:int ->
  Container_intf.seq_driver -> Container_intf.seq
(** [over_mem] with a private external SRAM target. *)
