lib/model/container.mli:
