lib/model/algorithm.mli: Container Hwpat_video Iterator
