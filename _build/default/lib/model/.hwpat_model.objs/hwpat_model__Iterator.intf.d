lib/model/iterator.mli: Container
