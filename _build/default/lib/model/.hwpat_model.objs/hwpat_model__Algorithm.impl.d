lib/model/algorithm.ml: Array Container Hashtbl Hwpat_algorithms Hwpat_video Iterator
