lib/model/iterator.ml: Container List
