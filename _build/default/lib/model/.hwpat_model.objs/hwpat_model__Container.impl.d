lib/model/container.ml: Array Hashtbl List
