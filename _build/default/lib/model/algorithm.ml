let transform ~f ~(src : 'a Iterator.input) ~(dst : 'b Iterator.output) ~limit =
  let rec go n =
    if n >= limit then n
    else
      match src.Iterator.next () with
      | None -> n
      | Some v -> if dst.Iterator.emit (f v) then go (n + 1) else n
  in
  go 0

let copy ~src ~dst ~limit = transform ~f:(fun x -> x) ~src ~dst ~limit

let fill ~(dst : 'a Iterator.output) ~value ~count =
  let rec go n =
    if n >= count then n else if dst.Iterator.emit value then go (n + 1) else n
  in
  go 0

let find ~(src : 'a Iterator.input) ~target ~limit =
  let rec go i =
    if i >= limit then None
    else
      match src.Iterator.next () with
      | None -> None
      | Some v -> if v = target then Some i else go (i + 1)
  in
  go 0

let accumulate ~(src : int Iterator.input) ~count =
  let rec go n acc =
    if n >= count then acc
    else
      match src.Iterator.next () with
      | None -> acc
      | Some v -> go (n + 1) (acc + v)
  in
  go 0 0

(* Blur through the same structure as the hardware: a 3-line buffer
   presenting one column per consumed pixel, a 3-column window in the
   algorithm, outputs for interior positions only. *)
let blur_frame frame =
  let module F = Hwpat_video.Frame in
  let w = F.width frame and h = F.height frame in
  if w < 3 || h < 3 then invalid_arg "Model.Algorithm.blur_frame: frame too small";
  let line1 = Array.make w 0 and line2 = Array.make w 0 in
  let x = ref 0 and y = ref 0 in
  (* Column iterator over the pixel stream. *)
  let src = Iterator.input_of_list (F.to_row_major frame) in
  let next_column () =
    match src.Iterator.next () with
    | None -> None
    | Some px ->
      let col = (line2.(!x), line1.(!x), px) in
      let warm = !y >= 2 in
      line2.(!x) <- line1.(!x);
      line1.(!x) <- px;
      incr x;
      if !x = w then begin
        x := 0;
        incr y
      end;
      Some (col, warm)
  in
  let out = F.create ~width:(w - 2) ~height:(h - 2) ~depth:(F.depth frame) in
  let ox = ref 0 and oy = ref 0 in
  let emit v =
    F.set out ~x:!ox ~y:!oy v;
    incr ox;
    if !ox = w - 2 then begin
      ox := 0;
      incr oy
    end
  in
  (* The algorithm proper: 3-column window, interior columns only. *)
  let c1 = ref (0, 0, 0) and c2 = ref (0, 0, 0) in
  let col_in_row = ref 0 in
  let rec run () =
    match next_column () with
    | None -> ()
    | Some (c0, warm) ->
      let window_full = !col_in_row >= 2 in
      if warm && window_full then begin
        let t2, m2, b2 = !c2 and t1, m1, b1 = !c1 and t0, m0, b0 = c0 in
        let window =
          [| [| t2; t1; t0 |]; [| m2; m1; m0 |]; [| b2; b1; b0 |] |]
        in
        emit (Hwpat_algorithms.Blur.reference_pixel ~window)
      end;
      c2 := !c1;
      c1 := c0;
      incr col_in_row;
      if !col_in_row = w then col_in_row := 0;
      run ()
  in
  run ();
  out

let histogram ~(src : int Iterator.input) ~(bins : int Container.vector) ~count =
  let len = Container.length bins in
  let it = Iterator.random_of_vector bins in
  let rec go n =
    if n >= count then n
    else
      match src.Iterator.next () with
      | None -> n
      | Some v ->
        Iterator.index it (min v (len - 1));
        Iterator.write it (Iterator.read it + 1);
        go (n + 1)
  in
  go 0

(* Two-pass connected-component labelling with union-find over the
   provisional labels, streaming the image in raster order exactly as
   a hardware implementation would. *)
let label_frame frame =
  let module F = Hwpat_video.Frame in
  let w = F.width frame and h = F.height frame in
  let parent = Array.init (w * h + 1) (fun i -> i) in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  let labels = Array.make_matrix h w 0 in
  let next = ref 1 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if F.get frame ~x ~y <> 0 then begin
        let left = if x > 0 then labels.(y).(x - 1) else 0 in
        let up = if y > 0 then labels.(y - 1).(x) else 0 in
        match (left, up) with
        | 0, 0 ->
          labels.(y).(x) <- !next;
          incr next
        | l, 0 | 0, l -> labels.(y).(x) <- l
        | l, u ->
          labels.(y).(x) <- min l u;
          union l u
      end
    done
  done;
  (* Second pass: resolve equivalences and densify the label set. *)
  let dense = Hashtbl.create 16 in
  let fresh = ref 0 in
  let out = F.create ~width:w ~height:h ~depth:16 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let l = labels.(y).(x) in
      if l <> 0 then begin
        let root = find l in
        let id =
          match Hashtbl.find_opt dense root with
          | Some id -> id
          | None ->
            incr fresh;
            Hashtbl.replace dense root !fresh;
            !fresh
        in
        F.set out ~x ~y id
      end
    done
  done;
  out
