type discipline = Fifo | Lifo

type side = Client | Stream

type 'a seq = {
  capacity : int;
  discipline : discipline;
  put_side : side;  (** who is allowed to put via [put] *)
  get_side : side;
  mutable items : 'a list;  (** head = next out *)
}

let queue ~capacity =
  { capacity; discipline = Fifo; put_side = Client; get_side = Client; items = [] }

let stack ~capacity =
  { capacity; discipline = Lifo; put_side = Client; get_side = Client; items = [] }

let read_buffer ~capacity =
  { capacity; discipline = Fifo; put_side = Stream; get_side = Client; items = [] }

let write_buffer ~capacity =
  { capacity; discipline = Fifo; put_side = Client; get_side = Stream; items = [] }

let size t = List.length t.items
let is_empty t = t.items = []
let is_full t = size t >= t.capacity
let capacity t = t.capacity

let raw_put t v =
  if is_full t then false
  else begin
    (match t.discipline with
    | Fifo -> t.items <- t.items @ [ v ]
    | Lifo -> t.items <- v :: t.items);
    true
  end

let raw_get t =
  match t.items with
  | [] -> None
  | v :: rest ->
    t.items <- rest;
    Some v

let put t v =
  if t.put_side <> Client then
    invalid_arg "Model.Container.put: this container is filled by a stream";
  raw_put t v

let stream_in t v =
  if t.put_side <> Stream && t.put_side <> Client then false else raw_put t v

let get t =
  if t.get_side <> Client then
    invalid_arg "Model.Container.get: this container is drained by a stream";
  raw_get t

let stream_out t = raw_get t

type 'a vector = { data : 'a array }

let vector ~length ~default = { data = Array.make length default }

let read t i = t.data.(i)
let write t i v = t.data.(i) <- v
let length t = Array.length t.data

type ('k, 'v) assoc = { slots : int; table : ('k, 'v) Hashtbl.t }

let assoc ~slots = { slots; table = Hashtbl.create slots }

let insert t k v =
  if Hashtbl.mem t.table k then begin
    Hashtbl.replace t.table k v;
    true
  end
  else if Hashtbl.length t.table >= t.slots then false
  else begin
    Hashtbl.replace t.table k v;
    true
  end

let lookup t k = Hashtbl.find_opt t.table k

let delete t k =
  if Hashtbl.mem t.table k then begin
    Hashtbl.remove t.table k;
    true
  end
  else false

let occupancy t = Hashtbl.length t.table
