(** Model-domain algorithms: the behavioural semantics the algorithm
    FSMs in [hwpat.algorithms] implement. Each works only through
    {!Iterator} values, mirroring the hardware decoupling. *)

val copy : src:'a Iterator.input -> dst:'a Iterator.output -> limit:int -> int
(** Move up to [limit] elements; returns how many moved (stops early
    when the source runs dry or the sink refuses). *)

val transform :
  f:('a -> 'b) -> src:'a Iterator.input -> dst:'b Iterator.output ->
  limit:int -> int

val fill : dst:'a Iterator.output -> value:'a -> count:int -> int

val find : src:'a Iterator.input -> target:'a -> limit:int -> int option
(** Index of the first match within [limit] elements. *)

val accumulate : src:int Iterator.input -> count:int -> int

val blur_frame : Hwpat_video.Frame.t -> Hwpat_video.Frame.t
(** Full-frame blur expressed through a column iterator over a 3-line
    buffer model — the same structure as the hardware — rather than
    direct 2-D indexing. Must equal {!Hwpat_video.Reference.blur}. *)

val histogram : src:int Iterator.input -> bins:int Container.vector -> count:int -> int
(** Bin [count] elements by value through a random iterator over
    [bins] (index / read / write per element). Returns how many were
    processed; elements whose value exceeds the vector length are
    counted in the last bin. *)

val label_frame : Hwpat_video.Frame.t -> Hwpat_video.Frame.t
(** Binary image labelling (4-connectivity connected components) —
    one of the domain algorithms the paper's §5 calls for. Non-zero
    pixels are foreground; the result assigns each component a dense
    label starting at 1. Two-pass with an equivalence table, the
    classic streaming-hardware formulation. Output depth is 16 bits. *)
