type 'a input = { next : unit -> 'a option }
type 'a output = { emit : 'a -> bool }

let input_of_seq c = { next = (fun () -> Container.stream_out c) }
let output_of_seq c = { emit = (fun v -> Container.stream_in c v) }

type 'a random = { vec : 'a Container.vector; mutable pos : int }

let random_of_vector vec = { vec; pos = 0 }
let inc it = it.pos <- it.pos + 1
let dec it = it.pos <- it.pos - 1
let index it i = it.pos <- i
let read it = Container.read it.vec it.pos
let write it v = Container.write it.vec it.pos v
let position it = it.pos
let at_end it = it.pos >= Container.length it.vec

let input_of_list values =
  let remaining = ref values in
  {
    next =
      (fun () ->
        match !remaining with
        | [] -> None
        | v :: rest ->
          remaining := rest;
          Some v);
  }

let output_to_list () =
  let acc = ref [] in
  ( { emit = (fun v -> acc := v :: !acc; true) },
    fun () -> List.rev !acc )
