(** Model-domain iterators: the behavioural contract the hardware
    wrappers implement. Sequential iterators fuse read+inc / write+inc
    exactly like the RTL (one [next]/[emit] is one fused access). *)

type 'a input = { next : unit -> 'a option }
(** [next ()] = fused read+inc: [None] when the source has nothing
    (hardware: the request stalls). *)

type 'a output = { emit : 'a -> bool }
(** [emit v] = fused write+inc: [false] when the sink is full. *)

val input_of_seq : 'a Container.seq -> 'a input
val output_of_seq : 'a Container.seq -> 'a output

(** Random iterator over a vector: the full Table 2 operation set. *)
type 'a random

val random_of_vector : 'a Container.vector -> 'a random
val inc : 'a random -> unit
val dec : 'a random -> unit
val index : 'a random -> int -> unit
val read : 'a random -> 'a
val write : 'a random -> 'a -> unit
val position : 'a random -> int
val at_end : 'a random -> bool

val input_of_list : 'a list -> 'a input
(** Iterator over a fixed list (for feeding algorithms directly). *)

val output_to_list : unit -> int output * (unit -> int list)
(** Collecting sink; the closure returns what was emitted so far. *)
