(** Model-domain containers (§3.4: "abstract classes do only exist
    inside the domain of the model").

    Executable behavioural semantics for every Table 1 container,
    independent of any physical target. The RTL builders in
    [hwpat.containers] must refine these: the test suite runs the same
    operation sequences against both and compares. *)

type 'a seq
(** A bounded sequential container (queue, stack, read/write buffer). *)

val queue : capacity:int -> 'a seq
val stack : capacity:int -> 'a seq
val read_buffer : capacity:int -> 'a seq
val write_buffer : capacity:int -> 'a seq

val put : 'a seq -> 'a -> bool
(** [false] when full (hardware: the put request stalls). Raises
    [Invalid_argument] on a read buffer's client side — its fill side
    is the stream, use {!stream_in}. *)

val stream_in : 'a seq -> 'a -> bool
(** Producer-side fill (the video decoder). Works on any container
    that accepts sequential input. *)

val get : 'a seq -> 'a option
(** [None] when empty. Raises on a write buffer — use {!stream_out}. *)

val stream_out : 'a seq -> 'a option
(** Consumer-side drain (the VGA coder). *)

val size : 'a seq -> int
val is_empty : 'a seq -> bool
val is_full : 'a seq -> bool
val capacity : 'a seq -> int

(** Random-access vector. *)
type 'a vector

val vector : length:int -> default:'a -> 'a vector
val read : 'a vector -> int -> 'a
val write : 'a vector -> int -> 'a -> unit
val length : 'a vector -> int

(** Bounded associative array (the hash-table semantics the RTL
    implements: bounded slots, insert fails when full). *)
type ('k, 'v) assoc

val assoc : slots:int -> ('k, 'v) assoc
val insert : ('k, 'v) assoc -> 'k -> 'v -> bool
val lookup : ('k, 'v) assoc -> 'k -> 'v option
val delete : ('k, 'v) assoc -> 'k -> bool
val occupancy : ('k, 'v) assoc -> int
