open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_iterators

type t = {
  col_driver : Iterator_intf.driver;
  dst_driver : Iterator_intf.driver;
  connect : col:Iterator_intf.t -> dst:Iterator_intf.t -> unit;
  produced : Signal.t;
  running : Signal.t;
}

let kernel = ((1, 2, 1), (2, 4, 2), (1, 2, 1))

let reference_pixel ~window =
  let (k00, k01, k02), (k10, k11, k12), (k20, k21, k22) = kernel in
  let k = [| [| k00; k01; k02 |]; [| k10; k11; k12 |]; [| k20; k21; k22 |] |] in
  let sum = ref 0 in
  for r = 0 to 2 do
    for c = 0 to 2 do
      sum := !sum + (k.(r).(c) * window.(r).(c))
    done
  done;
  !sum / 16

let st_fetch = 0
let st_store = 1
let st_halt = 2

let create ?(name = "blur") ?limit ~width ~image_width () =
  if image_width < 3 then invalid_arg "Blur.create: image_width must be >= 3";
  let col_w = 3 * width in
  let fetch_req = wire 1 and store_req = wire 1 in
  let out_w = wire width in
  let col_driver =
    {
      (Iterator_intf.driver_stub ~data_width:col_w ~pos_width:1) with
      Iterator_intf.read_req = fetch_req;
      inc_req = fetch_req;
    }
  in
  let dst_driver =
    {
      (Iterator_intf.driver_stub ~data_width:width ~pos_width:1) with
      Iterator_intf.write_req = store_req;
      inc_req = store_req;
      write_data = out_w;
    }
  in
  let produced_w = wire Transform.counter_width in
  let produced = reg produced_w -- (name ^ "_count") in
  let running_w = wire 1 in
  let connect ~(col : Iterator_intf.t) ~(dst : Iterator_intf.t) =
    let fsm = Fsm.create ~name:(name ^ "_state") ~states:3 () in
    let in_fetch = Fsm.is fsm st_fetch in
    let in_store = Fsm.is fsm st_store in
    fetch_req <== in_fetch;
    store_req <== in_store;
    let got = in_fetch &: col.Iterator_intf.read_ack in
    (* Column position within the row; the incoming column completes a
       window once two columns of this row are already held. *)
    let xbits = Util.address_bits image_width in
    let x =
      reg_fb ~width:xbits (fun q ->
          mux2 got
            (mux2 (q ==: of_int ~width:xbits (image_width - 1)) (zero xbits)
               (q +: one xbits))
            q)
      -- (name ^ "_x")
    in
    let window_full = x >=: of_int ~width:xbits 2 in
    let c0 = col.Iterator_intf.read_data in
    let c1 = reg ~enable:got c0 -- (name ^ "_c1") in
    let c2 = reg ~enable:got c1 -- (name ^ "_c2") in
    (* 3x3 binomial convolution; all weights are shifts. *)
    let sw = width + 4 in
    let part c = select c ~high:((3 * width) - 1) ~low:(2 * width) in
    let mid c = select c ~high:((2 * width) - 1) ~low:width in
    let bot c = select c ~high:(width - 1) ~low:0 in
    let w1 s = uresize s sw in
    let w2 s = sll (uresize s sw) 1 in
    let w4 s = sll (uresize s sw) 2 in
    (* Balanced adder tree: log depth instead of a serial chain. *)
    let rec tree_sum = function
      | [] -> assert false
      | [ x ] -> x
      | x :: y :: rest -> tree_sum (rest @ [ x +: y ])
    in
    let sum =
      tree_sum
        [
          w1 (part c2); w2 (mid c2); w1 (bot c2);
          w2 (part c1); w4 (mid c1); w2 (bot c1);
          w1 (part c0); w2 (mid c0); w1 (bot c0);
        ]
    in
    let out_reg =
      reg ~enable:(got &: window_full) (select sum ~high:(sw - 1) ~low:4)
      -- (name ^ "_out")
    in
    out_w <== out_reg;
    let stored = in_store &: dst.Iterator_intf.write_ack in
    produced_w
    <== mux2 stored (produced +: one Transform.counter_width) produced;
    let at_limit =
      match limit with
      | None -> gnd
      | Some n ->
        stored &: (produced ==: of_int ~width:Transform.counter_width (n - 1))
    in
    Fsm.transitions fsm
      [
        (st_fetch, [ (got &: window_full, st_store) ]);
        (st_store, [ (at_limit, st_halt); (dst.Iterator_intf.write_ack, st_fetch) ]);
        (st_halt, []);
      ];
    running_w <== ~:(Fsm.is fsm st_halt)
  in
  { col_driver; dst_driver; connect; produced; running = running_w }
