open Hwpat_rtl
open Hwpat_iterators

(** Fill: write [count] copies of a constant element through an output
    iterator (STL [fill_n]). *)

type t = {
  dst_driver : Iterator_intf.driver;
  connect : dst:Iterator_intf.t -> unit;
  written : Signal.t;
  done_ : Signal.t;
}

val create :
  ?name:string -> width:int -> value:Bits.t -> count:int -> unit -> t
