open Hwpat_rtl
open Hwpat_iterators

(** Find: scan up to [limit] elements through an input iterator and
    stop at the first one equal to [target] (STL [find]). *)

type t = {
  src_driver : Iterator_intf.driver;
  connect : src:Iterator_intf.t -> unit;
  found : Signal.t;     (** valid once [done_] *)
  position : Signal.t;  (** index of the match (elements consumed - 1) *)
  done_ : Signal.t;
}

val create :
  ?name:string -> width:int -> target:Signal.t -> limit:int -> unit -> t
(** [target] may be a dynamic signal; it is sampled on each comparison. *)
