open Hwpat_rtl
open Hwpat_iterators

(** The element-wise transform algorithm: an endless (or bounded) loop
    that reads an element through the input iterator, applies a
    combinational function, and writes the result through the output
    iterator. The paper's copy algorithm is the identity transform.

    The algorithm knows nothing about containers: it sees only the
    Table 2 operation handshakes, which is why the same FSM runs
    unchanged over FIFO-, block-RAM- and SRAM-backed buffers. *)

type t = {
  src_driver : Iterator_intf.driver;
    (** connect to the input iterator *)
  dst_driver : Iterator_intf.driver;
    (** connect to the output iterator *)
  connect : src:Iterator_intf.t -> dst:Iterator_intf.t -> unit;
    (** close the loop once both iterators exist; call exactly once *)
  transferred : Signal.t;  (** elements written so far *)
  running : Signal.t;      (** low once [limit] elements have moved *)
}

val create :
  ?name:string -> ?enable:Signal.t -> ?limit:int -> width:int ->
  f:(Signal.t -> Signal.t) -> unit -> t
(** [limit]: stop after that many elements ([None] = free-running).
    [enable]: gate the fetch side (default always on); an in-flight
    element still completes its store. [f] must preserve width. The
    driver records contain internal wires; pass them when building
    iterators, then call [connect]. *)

val counter_width : int
(** Width of [transferred] (large enough for any test frame). *)
