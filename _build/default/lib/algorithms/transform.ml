open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_iterators

let counter_width = 24

type t = {
  src_driver : Iterator_intf.driver;
  dst_driver : Iterator_intf.driver;
  connect : src:Iterator_intf.t -> dst:Iterator_intf.t -> unit;
  transferred : Signal.t;
  running : Signal.t;
}

let st_fetch = 0
let st_store = 1
let st_halt = 2

let create ?(name = "xform") ?enable ?limit ~width ~f () =
  let fetch_req = wire 1 and store_req = wire 1 in
  let data_reg_w = wire width in
  let src_driver =
    {
      (Iterator_intf.driver_stub ~data_width:width ~pos_width:1) with
      Iterator_intf.read_req = fetch_req;
      inc_req = fetch_req;
    }
  in
  let dst_driver =
    {
      (Iterator_intf.driver_stub ~data_width:width ~pos_width:1) with
      Iterator_intf.write_req = store_req;
      inc_req = store_req;
      write_data = data_reg_w;
    }
  in
  let transferred_w = wire counter_width in
  let transferred = reg transferred_w -- (name ^ "_count") in
  let running_w = wire 1 in
  let connect ~(src : Iterator_intf.t) ~(dst : Iterator_intf.t) =
    let fsm = Fsm.create ~name:(name ^ "_state") ~states:3 () in
    let in_fetch = Fsm.is fsm st_fetch in
    let in_store = Fsm.is fsm st_store in
    let gate = match enable with Some e -> e | None -> vdd in
    fetch_req <== (in_fetch &: gate);
    store_req <== in_store;
    (* Containers guarantee get_data stays stable until the next get
       completes, so the element flows straight from the input iterator
       to the output iterator — no holding register, exactly like the
       hand-written datapath. *)
    data_reg_w <== f src.Iterator_intf.read_data;
    let stored = in_store &: dst.Iterator_intf.write_ack in
    transferred_w
    <== mux2 stored (transferred +: one counter_width) transferred;
    let at_limit =
      match limit with
      | None -> gnd
      | Some n ->
        (* The element being stored is number [transferred + 1]. *)
        stored &: (transferred ==: of_int ~width:counter_width (n - 1))
    in
    Fsm.transitions fsm
      [
        (st_fetch, [ (src.Iterator_intf.read_ack, st_store) ]);
        (st_store, [ (at_limit, st_halt); (dst.Iterator_intf.write_ack, st_fetch) ]);
        (st_halt, []);
      ];
    running_w <== ~:(Fsm.is fsm st_halt)
  in
  {
    src_driver;
    dst_driver;
    connect;
    transferred;
    running = running_w;
  }
