open Hwpat_rtl
open Hwpat_iterators

(** Histogram: one of the domain algorithms the paper's §5 calls for in
    an image-processing library. Counts value occurrences of a pixel
    stream into a vector of bins.

    This is the algorithm that exercises the *random* iterator's full
    Table 2 set: for each input element it performs [index] (jump to
    the bin), [read] (current count) and [write] (count + 1) — all
    through the same handshake the sequential algorithms use. *)

type t = {
  src_driver : Iterator_intf.driver;  (** pixel input iterator *)
  bin_driver : Iterator_intf.driver;  (** random iterator over the bins *)
  connect : src:Iterator_intf.t -> bins:Iterator_intf.t -> unit;
  processed : Signal.t;
  done_ : Signal.t;
}

val create :
  ?name:string -> pixel_width:int -> bin_width:int -> count:int -> unit -> t
(** Bins are indexed directly by pixel value; the bins vector must have
    [2^pixel_width] entries of [bin_width] bits. Processes [count]
    pixels, then halts. *)
