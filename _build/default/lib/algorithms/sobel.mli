open Hwpat_rtl
open Hwpat_iterators

(** Sobel edge detection — a second windowed algorithm over the same
    3-line-buffer read buffer as {!Blur}, demonstrating that the
    specialised container is reusable across algorithms (the paper's §5
    asks for exactly such a convolution-filter family).

    Gradient magnitude is the exact integer formula

    {v |Gx| + |Gy|, saturated to the pixel range v}

    with the classic kernels Gx = [-1 0 1; -2 0 2; -1 0 1] and
    Gy = Gxᵀ, so hardware output is bit-identical to
    {!reference_pixel}. Output stream: interior pixels only,
    (W-2)×(H-2) row-major. *)

type t = {
  col_driver : Iterator_intf.driver;
  dst_driver : Iterator_intf.driver;
  connect : col:Iterator_intf.t -> dst:Iterator_intf.t -> unit;
  produced : Signal.t;
  running : Signal.t;
}

val create :
  ?name:string -> ?limit:int -> width:int -> image_width:int -> unit -> t

val reference_pixel : window:int array array -> width:int -> int
(** Software model of one output pixel ([window.(row).(col)]). *)
