open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_iterators

type t = {
  col_driver : Iterator_intf.driver;
  dst_driver : Iterator_intf.driver;
  connect : col:Iterator_intf.t -> dst:Iterator_intf.t -> unit;
  produced : Signal.t;
  running : Signal.t;
}

let reference_pixel ~window ~width =
  let w = window in
  let gx =
    w.(0).(2) + (2 * w.(1).(2)) + w.(2).(2)
    - (w.(0).(0) + (2 * w.(1).(0)) + w.(2).(0))
  in
  let gy =
    w.(2).(0) + (2 * w.(2).(1)) + w.(2).(2)
    - (w.(0).(0) + (2 * w.(0).(1)) + w.(0).(2))
  in
  min (abs gx + abs gy) ((1 lsl width) - 1)

let st_fetch = 0
let st_store = 1
let st_halt = 2

let create ?(name = "sobel") ?limit ~width ~image_width () =
  if image_width < 3 then invalid_arg "Sobel.create: image_width must be >= 3";
  let col_w = 3 * width in
  let fetch_req = wire 1 and store_req = wire 1 in
  let out_w = wire width in
  let col_driver =
    {
      (Iterator_intf.driver_stub ~data_width:col_w ~pos_width:1) with
      Iterator_intf.read_req = fetch_req;
      inc_req = fetch_req;
    }
  in
  let dst_driver =
    {
      (Iterator_intf.driver_stub ~data_width:width ~pos_width:1) with
      Iterator_intf.write_req = store_req;
      inc_req = store_req;
      write_data = out_w;
    }
  in
  let produced_w = wire Transform.counter_width in
  let produced = reg produced_w -- (name ^ "_count") in
  let running_w = wire 1 in
  let connect ~(col : Iterator_intf.t) ~(dst : Iterator_intf.t) =
    let fsm = Fsm.create ~name:(name ^ "_state") ~states:3 () in
    let in_fetch = Fsm.is fsm st_fetch in
    let in_store = Fsm.is fsm st_store in
    fetch_req <== in_fetch;
    store_req <== in_store;
    let got = in_fetch &: col.Iterator_intf.read_ack in
    let xbits = Util.address_bits image_width in
    let x =
      reg_fb ~width:xbits (fun q ->
          mux2 got
            (mux2 (q ==: of_int ~width:xbits (image_width - 1)) (zero xbits)
               (q +: one xbits))
            q)
      -- (name ^ "_x")
    in
    let window_full = x >=: of_int ~width:xbits 2 in
    (* Columns: c2 = left (x-2), c1 = centre, c0 = incoming right. *)
    let c0 = col.Iterator_intf.read_data in
    let c1 = reg ~enable:got c0 -- (name ^ "_c1") in
    let c2 = reg ~enable:got c1 -- (name ^ "_c2") in
    let sw = width + 3 in
    let top c = select c ~high:((3 * width) - 1) ~low:(2 * width) in
    let mid c = select c ~high:((2 * width) - 1) ~low:width in
    let bot c = select c ~high:(width - 1) ~low:0 in
    let w1 s = uresize s sw in
    let w2 s = sll (uresize s sw) 1 in
    (* Column sums weighted 1-2-1 vertically (for Gx) and the row sums
       weighted 1-2-1 horizontally (for Gy). *)
    let col_sum c = w1 (top c) +: w2 (mid c) +: w1 (bot c) in
    let row_top = w1 (top c2) +: w2 (top c1) +: w1 (top c0) in
    let row_bot = w1 (bot c2) +: w2 (bot c1) +: w1 (bot c0) in
    let absdiff a b = mux2 (a >=: b) (a -: b) (b -: a) in
    let gx = absdiff (col_sum c0) (col_sum c2) -- (name ^ "_gx") in
    let gy = absdiff row_bot row_top -- (name ^ "_gy") in
    let mw = sw + 1 in
    let mag = uresize gx mw +: uresize gy mw in
    let full_scale = of_int ~width:mw ((1 lsl width) - 1) in
    let saturated =
      mux2 (mag >: full_scale) full_scale mag -- (name ^ "_mag")
    in
    let out_reg =
      reg ~enable:(got &: window_full) (select saturated ~high:(width - 1) ~low:0)
      -- (name ^ "_out")
    in
    out_w <== out_reg;
    let stored = in_store &: dst.Iterator_intf.write_ack in
    produced_w <== mux2 stored (produced +: one Transform.counter_width) produced;
    let at_limit =
      match limit with
      | None -> gnd
      | Some n ->
        stored &: (produced ==: of_int ~width:Transform.counter_width (n - 1))
    in
    Fsm.transitions fsm
      [
        (st_fetch, [ (got &: window_full, st_store) ]);
        (st_store, [ (at_limit, st_halt); (dst.Iterator_intf.write_ack, st_fetch) ]);
        (st_halt, []);
      ];
    running_w <== ~:(Fsm.is fsm st_halt)
  in
  { col_driver; dst_driver; connect; produced; running = running_w }
