open Hwpat_rtl
open Hwpat_iterators

(** Run-length encoder: compresses a stream of [count] elements into
    (run, value) pairs emitted through an output iterator whose element
    width is [2 × width] ([run] in the high half).

    Unlike the 1-in/1-out kernels, the output rate is data dependent —
    the handshake discipline absorbs that without any change to the
    containers on either side. Runs longer than [2^width - 1] are split.
    After the [count]-th input the final run is flushed and the machine
    halts. *)

type t = {
  src_driver : Iterator_intf.driver;
  dst_driver : Iterator_intf.driver;  (** element width is [2 * width] *)
  connect : src:Iterator_intf.t -> dst:Iterator_intf.t -> unit;
  pairs : Signal.t;   (** pairs emitted so far *)
  done_ : Signal.t;
}

val create : ?name:string -> width:int -> count:int -> unit -> t

val reference : width:int -> int list -> (int * int) list
(** Software model: [(run, value)] pairs with the same splitting rule. *)
