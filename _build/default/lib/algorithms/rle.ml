open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_iterators

type t = {
  src_driver : Iterator_intf.driver;
  dst_driver : Iterator_intf.driver;
  connect : src:Iterator_intf.t -> dst:Iterator_intf.t -> unit;
  pairs : Signal.t;
  done_ : Signal.t;
}

let reference ~width values =
  let max_run = (1 lsl width) - 1 in
  let rec go acc cur run = function
    | [] -> if run = 0 then List.rev acc else List.rev ((run, cur) :: acc)
    | v :: rest ->
      if run > 0 && v = cur && run < max_run then go acc cur (run + 1) rest
      else if run = 0 then go acc v 1 rest
      else go ((run, cur) :: acc) v 1 rest
  in
  go [] 0 0 values

let st_fetch = 0
let st_emit = 1
let st_flush = 2
let st_halt = 3

let create ?(name = "rle") ~width ~count () =
  if count < 1 then invalid_arg "Rle.create: count must be >= 1";
  let fetch_req = wire 1 and emit_req = wire 1 in
  let pair_w = wire (2 * width) in
  let src_driver =
    {
      (Iterator_intf.driver_stub ~data_width:width ~pos_width:1) with
      Iterator_intf.read_req = fetch_req;
      inc_req = fetch_req;
    }
  in
  let dst_driver =
    {
      (Iterator_intf.driver_stub ~data_width:(2 * width) ~pos_width:1) with
      Iterator_intf.write_req = emit_req;
      inc_req = emit_req;
      write_data = pair_w;
    }
  in
  let cw = Util.bits_to_represent count in
  let pairs_w = wire Transform.counter_width in
  let pairs = reg pairs_w -- (name ^ "_pairs") in
  let done_w = wire 1 in
  let connect ~(src : Iterator_intf.t) ~(dst : Iterator_intf.t) =
    let fsm = Fsm.create ~name:(name ^ "_state") ~states:4 () in
    let in_fetch = Fsm.is fsm st_fetch in
    let in_emit = Fsm.is fsm st_emit in
    let in_flush = Fsm.is fsm st_flush in
    fetch_req <== in_fetch;
    emit_req <== (in_emit |: in_flush);
    let got = in_fetch &: src.Iterator_intf.read_ack in
    let v = src.Iterator_intf.read_data in
    let max_run = ones width in
    let have_w = wire 1 and cur_w = wire width and run_w = wire width in
    let have = reg have_w -- (name ^ "_have") in
    let cur = reg cur_w -- (name ^ "_cur") in
    let run = reg run_w -- (name ^ "_run") in
    let matches = have &: (v ==: cur) &: (run <>: max_run) in
    let start_new = got &: ~:have in
    let extend = got &: matches in
    let break_run = got &: have &: ~:matches in
    let pending = reg ~enable:break_run v -- (name ^ "_pending") in
    let consumed =
      reg_fb ~width:cw (fun q -> mux2 got (q +: one cw) q) -- (name ^ "_consumed")
    in
    (* [consumed] updates on the same edge as the state transition, so
       compare against the pre-increment value. *)
    let last_input = consumed ==: of_int ~width:cw (count - 1) in
    let emitted = in_emit &: dst.Iterator_intf.write_ack in
    let flushed = in_flush &: dst.Iterator_intf.write_ack in
    have_w <== mux2 (start_new |: emitted) vdd have;
    cur_w
    <== mux2 start_new v (mux2 emitted pending cur);
    run_w
    <== mux2 (start_new |: emitted) (one width)
          (mux2 extend (run +: one width) run);
    pair_w <== concat_msb [ run; cur ];
    pairs_w <== mux2 (emitted |: flushed) (pairs +: one Transform.counter_width) pairs;
    Fsm.transitions fsm
      [
        ( st_fetch,
          [
            (break_run, st_emit);
            ((start_new |: extend) &: last_input, st_flush);
          ] );
        ( st_emit,
          [
            (emitted &: (consumed ==: of_int ~width:cw count), st_flush);
            (emitted, st_fetch);
          ] );
        (st_flush, [ (flushed, st_halt) ]);
        (st_halt, []);
      ];
    done_w <== Fsm.is fsm st_halt
  in
  { src_driver; dst_driver; connect; pairs; done_ = done_w }
