open Hwpat_rtl
open Hwpat_iterators

(** Accumulate: sum [count] elements from an input iterator into a
    widened register (STL [accumulate]). *)

type t = {
  src_driver : Iterator_intf.driver;
  connect : src:Iterator_intf.t -> unit;
  sum : Signal.t;   (** width + 16 bits; valid once [done_] *)
  done_ : Signal.t;
}

val create : ?name:string -> width:int -> count:int -> unit -> t
