open Hwpat_rtl
open Hwpat_iterators

(** The blur filter of the paper's third experiment.

    Reads 3-pixel columns through an input iterator over the
    specialised 3-line-buffer read buffer (one column per access) and
    writes one filtered pixel per interior position through an output
    iterator. The kernel is the binomial 3×3

    {v 1 2 1
       2 4 2   / 16
       1 2 1 v}

    which is exact in fixed point (sum of weights 16), so the hardware
    result is bit-identical to the software reference.

    The output stream contains interior pixels only: for a W×H input,
    (W-2)×(H-2) pixels in row-major order. *)

type t = {
  col_driver : Iterator_intf.driver;
    (** connect to the column (3×width) input iterator *)
  dst_driver : Iterator_intf.driver;
    (** connect to the pixel output iterator *)
  connect : col:Iterator_intf.t -> dst:Iterator_intf.t -> unit;
  produced : Signal.t;
  running : Signal.t;
}

val create :
  ?name:string -> ?limit:int -> width:int -> image_width:int -> unit -> t

val kernel : (int * int * int) * (int * int * int) * (int * int * int)
(** The fixed kernel weights, rows top to bottom. *)

val reference_pixel : window:int array array -> int
(** Software model of one output pixel from a 3×3 window
    ([window.(row).(col)]), used by tests and the video reference. *)
