open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_iterators

type t = {
  src_driver : Iterator_intf.driver;
  bin_driver : Iterator_intf.driver;
  connect : src:Iterator_intf.t -> bins:Iterator_intf.t -> unit;
  processed : Signal.t;
  done_ : Signal.t;
}

let st_px = 0
let st_index = 1
let st_read = 2
let st_write = 3
let st_halt = 4

let create ?(name = "hist") ~pixel_width ~bin_width ~count () =
  if count < 1 then invalid_arg "Histogram.create: count must be >= 1";
  let fetch_req = wire 1 in
  let index_req = wire 1 and read_req = wire 1 and write_req = wire 1 in
  let pixel_w = wire pixel_width in
  let bin_plus_one_w = wire bin_width in
  let src_driver =
    {
      (Iterator_intf.driver_stub ~data_width:pixel_width ~pos_width:1) with
      Iterator_intf.read_req = fetch_req;
      inc_req = fetch_req;
    }
  in
  let bin_driver =
    {
      (Iterator_intf.driver_stub ~data_width:bin_width ~pos_width:pixel_width) with
      Iterator_intf.index_req;
      index_pos = pixel_w;
      read_req;
      write_req;
      write_data = bin_plus_one_w;
    }
  in
  let cw = Util.bits_to_represent count in
  let processed_w = wire cw in
  let processed = reg processed_w -- (name ^ "_processed") in
  let done_w = wire 1 in
  let connect ~(src : Iterator_intf.t) ~(bins : Iterator_intf.t) =
    let fsm = Fsm.create ~name:(name ^ "_state") ~states:5 () in
    let in_px = Fsm.is fsm st_px in
    let in_index = Fsm.is fsm st_index in
    let in_read = Fsm.is fsm st_read in
    let in_write = Fsm.is fsm st_write in
    fetch_req <== in_px;
    index_req <== in_index;
    read_req <== in_read;
    write_req <== in_write;
    let got_px = in_px &: src.Iterator_intf.read_ack in
    let pixel =
      reg ~enable:got_px src.Iterator_intf.read_data -- (name ^ "_pixel")
    in
    pixel_w <== pixel;
    let got_bin = in_read &: bins.Iterator_intf.read_ack in
    let bin =
      reg ~enable:got_bin bins.Iterator_intf.read_data -- (name ^ "_bin")
    in
    bin_plus_one_w <== (bin +: one bin_width);
    let wrote = in_write &: bins.Iterator_intf.write_ack in
    processed_w <== mux2 wrote (processed +: one cw) processed;
    let last = wrote &: (processed ==: of_int ~width:cw (count - 1)) in
    Fsm.transitions fsm
      [
        (st_px, [ (src.Iterator_intf.read_ack, st_index) ]);
        (st_index, [ (bins.Iterator_intf.index_ack, st_read) ]);
        (st_read, [ (bins.Iterator_intf.read_ack, st_write) ]);
        (st_write, [ (last, st_halt); (bins.Iterator_intf.write_ack, st_px) ]);
        (st_halt, []);
      ];
    done_w <== Fsm.is fsm st_halt
  in
  { src_driver; bin_driver; connect; processed; done_ = done_w }
