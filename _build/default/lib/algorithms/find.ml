open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_iterators

type t = {
  src_driver : Iterator_intf.driver;
  connect : src:Iterator_intf.t -> unit;
  found : Signal.t;
  position : Signal.t;
  done_ : Signal.t;
}

let st_fetch = 0
let st_halt = 1

let create ?(name = "find") ~width ~target ~limit () =
  if Signal.width target <> width then
    invalid_arg "Find.create: target width mismatch";
  if limit < 1 then invalid_arg "Find.create: limit must be >= 1";
  let fetch_req = wire 1 in
  let src_driver =
    {
      (Iterator_intf.driver_stub ~data_width:width ~pos_width:1) with
      Iterator_intf.read_req = fetch_req;
      inc_req = fetch_req;
    }
  in
  let cw = Util.bits_to_represent limit in
  let seen_w = wire cw in
  let seen = reg seen_w -- (name ^ "_seen") in
  let found_w = wire 1 and done_w = wire 1 in
  let connect ~(src : Iterator_intf.t) =
    let fsm = Fsm.create ~name:(name ^ "_state") ~states:2 () in
    let in_fetch = Fsm.is fsm st_fetch in
    fetch_req <== in_fetch;
    let got = in_fetch &: src.Iterator_intf.read_ack in
    let hit = got &: (src.Iterator_intf.read_data ==: target) in
    let exhausted = got &: (seen ==: of_int ~width:cw (limit - 1)) in
    seen_w <== mux2 got (seen +: one cw) seen;
    let found_r =
      Hwpat_devices.Handshake.sticky ~set:hit ~clear:gnd -- (name ^ "_found")
    in
    found_w <== found_r;
    Fsm.transitions fsm
      [ (st_fetch, [ (hit |: exhausted, st_halt) ]); (st_halt, []) ];
    done_w <== Fsm.is fsm st_halt
  in
  {
    src_driver;
    connect;
    found = found_w;
    position = seen -: one cw;
    done_ = done_w;
  }
