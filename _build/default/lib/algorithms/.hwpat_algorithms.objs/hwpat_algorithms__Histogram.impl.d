lib/algorithms/histogram.ml: Fsm Hwpat_iterators Hwpat_rtl Iterator_intf Signal Util
