lib/algorithms/sobel.ml: Array Fsm Hwpat_iterators Hwpat_rtl Iterator_intf Signal Transform Util
