lib/algorithms/histogram.mli: Hwpat_iterators Hwpat_rtl Iterator_intf Signal
