lib/algorithms/transform.ml: Fsm Hwpat_iterators Hwpat_rtl Iterator_intf Signal
