lib/algorithms/find.ml: Fsm Hwpat_devices Hwpat_iterators Hwpat_rtl Iterator_intf Signal Util
