lib/algorithms/rle.ml: Fsm Hwpat_iterators Hwpat_rtl Iterator_intf List Signal Transform Util
