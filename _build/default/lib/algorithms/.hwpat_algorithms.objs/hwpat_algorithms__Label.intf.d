lib/algorithms/label.mli: Container_intf Hwpat_containers Hwpat_iterators Hwpat_rtl Iterator_intf Signal
