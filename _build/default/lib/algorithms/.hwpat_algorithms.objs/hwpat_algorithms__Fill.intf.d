lib/algorithms/fill.mli: Bits Hwpat_iterators Hwpat_rtl Iterator_intf Signal
