lib/algorithms/fill.ml: Bits Fsm Hwpat_iterators Hwpat_rtl Iterator_intf Signal Util
