lib/algorithms/copy.ml: Transform
