lib/algorithms/blur.mli: Hwpat_iterators Hwpat_rtl Iterator_intf Signal
