lib/algorithms/find.mli: Hwpat_iterators Hwpat_rtl Iterator_intf Signal
