lib/algorithms/copy.mli: Hwpat_rtl Transform
