lib/algorithms/label.ml: Bits Container_intf Fsm Hwpat_containers Hwpat_iterators Hwpat_rtl Iterator_intf Signal Util Vector_c
