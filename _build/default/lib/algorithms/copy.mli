(** The copy algorithm of the paper's motivating example: "an endless
    loop that sequences read and write operations and iterator
    forwarding for both containers". Identity {!Transform}. *)

type t = Transform.t

val create :
  ?name:string -> ?enable:Hwpat_rtl.Signal.t -> ?limit:int -> width:int ->
  unit -> t
