open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_iterators

type t = {
  dst_driver : Iterator_intf.driver;
  connect : dst:Iterator_intf.t -> unit;
  written : Signal.t;
  done_ : Signal.t;
}

let st_store = 0
let st_halt = 1

let create ?(name = "fill") ~width ~value ~count () =
  if Bits.width value <> width then invalid_arg "Fill.create: value width mismatch";
  if count < 1 then invalid_arg "Fill.create: count must be >= 1";
  let store_req = wire 1 in
  let dst_driver =
    {
      (Iterator_intf.driver_stub ~data_width:width ~pos_width:1) with
      Iterator_intf.write_req = store_req;
      inc_req = store_req;
      write_data = const value;
    }
  in
  let cw = Util.bits_to_represent count in
  let written_w = wire cw in
  let written = reg written_w -- (name ^ "_written") in
  let done_w = wire 1 in
  let connect ~(dst : Iterator_intf.t) =
    let fsm = Fsm.create ~name:(name ^ "_state") ~states:2 () in
    let in_store = Fsm.is fsm st_store in
    store_req <== in_store;
    let stored = in_store &: dst.Iterator_intf.write_ack in
    written_w <== mux2 stored (written +: one cw) written;
    let last = stored &: (written ==: of_int ~width:cw (count - 1)) in
    Fsm.transitions fsm [ (st_store, [ (last, st_halt) ]); (st_halt, []) ];
    done_w <== Fsm.is fsm st_halt
  in
  { dst_driver; connect; written; done_ = done_w }
