open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_iterators

type t = {
  src_driver : Iterator_intf.driver;
  dst_driver : Iterator_intf.driver;
  connect : src:Iterator_intf.t -> dst:Iterator_intf.t -> unit;
  done_ : Signal.t;
  labels_used : Signal.t;
}

(* Pass 1 states *)
let p1_fetch = 0
let p1_read_up = 1
let p1_new_label = 2
let p1_find_a = 3
let p1_find_b = 4
let p1_union = 5
let p1_write_prev = 6
let p1_write_fb = 7

(* Pass 2 states *)
let p2_read_fb = 8
let p2_find = 9
let p2_read_dense = 10
let p2_write_dense = 11
let p2_emit = 12
let halt = 13

let default_vector ~name ~length ~width d =
  Vector_c.over_bram ~name ~length ~width d

let create ?(name = "label") ?(vector = default_vector) ~width ~label_bits
    ~image_width ~image_height () =
  if image_width < 1 || image_height < 1 then
    invalid_arg "Label.create: empty image";
  let fetch_req = wire 1 and emit_req = wire 1 in
  let out_w = wire label_bits in
  let src_driver =
    {
      (Iterator_intf.driver_stub ~data_width:width ~pos_width:1) with
      Iterator_intf.read_req = fetch_req;
      inc_req = fetch_req;
    }
  in
  let dst_driver =
    {
      (Iterator_intf.driver_stub ~data_width:label_bits ~pos_width:1) with
      Iterator_intf.write_req = emit_req;
      inc_req = emit_req;
      write_data = out_w;
    }
  in
  let done_w = wire 1 in
  let labels_used_w = wire label_bits in
  let connect ~(src : Iterator_intf.t) ~(dst : Iterator_intf.t) =
    let fsm = Fsm.create ~name:(name ^ "_state") ~states:14 () in
    let is = Fsm.is fsm in
    let n_pixels = image_width * image_height in
    let xbits = Util.address_bits image_width in
    let fbits = Util.address_bits n_pixels in
    let lmax = 1 lsl label_bits in

    fetch_req <== is p1_fetch;
    emit_req <== is p2_emit;

    (* --- Table ports (acks/data come back through wires). ----------- *)
    let prev_ack = wire 1 and prev_data = wire label_bits in
    let par_ack = wire 1 and par_data = wire label_bits in
    let fb_ack = wire 1 and fb_data = wire label_bits in
    let dn_ack = wire 1 and dn_data = wire label_bits in

    (* --- Walkers and registers. -------------------------------------- *)
    let got = is p1_fetch &: src.Iterator_intf.read_ack in
    let fg =
      reg ~enable:got (src.Iterator_intf.read_data <>: zero width)
      -- (name ^ "_fg")
    in
    let up_seen = is p1_read_up &: prev_ack in
    let up = prev_data in
    (* left label of the current row; cleared at each row start *)
    let left_w = wire label_bits in
    let left = reg left_w -- (name ^ "_left") in
    let label_w = wire label_bits in
    let label_r = reg label_w -- (name ^ "_label") in
    (* union-find walkers *)
    let a_w = wire label_bits and b_w = wire label_bits in
    let a_r = reg a_w -- (name ^ "_a") in
    let b_r = reg b_w -- (name ^ "_b") in
    let root_a_w = wire label_bits in
    let root_a = reg root_a_w -- (name ^ "_root_a") in
    (* provisional label allocator (label 0 = background) *)
    let next_w = wire label_bits in
    let next = reg ~init:(Bits.one label_bits) next_w -- (name ^ "_next") in
    (* dense allocator *)
    let next_dense_w = wire label_bits in
    let next_dense =
      reg ~init:(Bits.one label_bits) next_dense_w -- (name ^ "_next_dense")
    in
    let out_reg_w = wire label_bits in
    let out_reg = reg out_reg_w -- (name ^ "_out") in

    (* Pixel position in pass 1. *)
    let fb_written = is p1_write_fb &: fb_ack in
    let x =
      reg_fb ~width:xbits (fun q ->
          mux2 fb_written
            (mux2 (q ==: of_int ~width:xbits (image_width - 1)) (zero xbits)
               (q +: one xbits))
            q)
      -- (name ^ "_x")
    in
    let at_row_end = x ==: of_int ~width:xbits (image_width - 1) in
    let fb1 =
      reg_fb ~width:fbits (fun q -> mux2 fb_written (q +: one fbits) q)
      -- (name ^ "_fb1")
    in
    let last_px = fb1 ==: of_int ~width:fbits (n_pixels - 1) in
    (* Pass 2 position. *)
    let emitted = is p2_emit &: dst.Iterator_intf.write_ack in
    let fb2 =
      reg_fb ~width:fbits (fun q -> mux2 emitted (q +: one fbits) q)
      -- (name ^ "_fb2")
    in
    let last_out = fb2 ==: of_int ~width:fbits (n_pixels - 1) in

    (* --- Decision at the up-read ack. -------------------------------- *)
    let lz = label_bits in
    let left_bg = left ==: zero lz in
    let up_bg = up ==: zero lz in
    let new_component = up_seen &: fg &: left_bg &: up_bg in
    let take_one =
      (* exactly one neighbour, or both equal: no union necessary *)
      up_seen &: fg
      &: ~:(left_bg &: up_bg)
      &: (left_bg |: up_bg |: (left ==: up))
    in
    let needs_union =
      up_seen &: fg &: ~:left_bg &: ~:up_bg &: (left <>: up)
    in
    let background = up_seen &: ~:fg in
    let min_lu = mux2 (left <: up) left up in
    let single = mux2 left_bg up left in

    (* --- Union-find walking. ------------------------------------------ *)
    let step_a = is p1_find_a &: par_ack in
    let a_is_root = par_data ==: a_r in
    let step_b = is p1_find_b &: par_ack in
    let b_is_root = par_data ==: b_r in
    let p2_step = is p2_find &: par_ack in
    let p2_at_root = par_data ==: a_r in
    a_w
    <== mux2 needs_union min_lu
          (mux2 (step_a &: ~:a_is_root) par_data
             (mux2
                ((is p2_read_fb &: fb_ack) &: (fb_data <>: zero lz))
                fb_data
                (mux2 (p2_step &: ~:p2_at_root) par_data a_r)));
    (* walker b holds the larger of the pair *)
    b_w <== mux2 needs_union (mux2 (left <: up) up left)
              (mux2 (step_b &: ~:b_is_root) par_data b_r);
    root_a_w <== mux2 (step_a &: a_is_root) a_r root_a;
    let root_b = b_r in

    (* --- Label register. ---------------------------------------------- *)
    let new_label_done = is p1_new_label &: par_ack in
    label_w
    <== mux2 background (zero lz)
          (mux2 take_one single
             (mux2 needs_union min_lu (mux2 new_label_done next label_r)));
    next_w <== mux2 new_label_done (next +: one lz) next;

    (* --- Dense mapping. ------------------------------------------------ *)
    let dense_hit = is p2_read_dense &: dn_ack &: (dn_data <>: zero lz) in
    let dense_miss = is p2_read_dense &: dn_ack &: (dn_data ==: zero lz) in
    let dense_written = is p2_write_dense &: dn_ack in
    out_reg_w
    <== mux2
          ((is p2_read_fb &: fb_ack) &: (fb_data ==: zero lz))
          (zero lz)
          (mux2 dense_hit dn_data (mux2 dense_miss next_dense out_reg));
    next_dense_w <== mux2 dense_written (next_dense +: one lz) next_dense;
    out_w <== out_reg;

    (* --- Left register update. ----------------------------------------- *)
    left_w
    <== mux2 fb_written (mux2 at_row_end (zero lz) label_r) left;

    (* --- Tables. -------------------------------------------------------- *)
    let prev_row =
      vector ~name:(name ^ "_prev") ~length:image_width ~width:label_bits
        {
          Container_intf.read_req = is p1_read_up;
          write_req = is p1_write_prev;
          addr = x;
          write_data = label_r;
        }
    in
    prev_ack
    <== (prev_row.Container_intf.read_ack |: prev_row.Container_intf.write_ack);
    prev_data <== prev_row.Container_intf.read_data;
    let parent =
      vector ~name:(name ^ "_parent") ~length:lmax ~width:label_bits
        {
          Container_intf.read_req = is p1_find_a |: is p1_find_b |: is p2_find;
          write_req = is p1_new_label |: is p1_union;
          addr =
            mux2 (is p1_new_label) next
              (mux2 (is p1_union)
                 (mux2 (root_a <: root_b) root_b root_a)
                 (mux2 (is p1_find_b) b_r a_r));
          write_data =
            mux2 (is p1_new_label) next
              (mux2 (root_a <: root_b) root_a root_b);
        }
    in
    par_ack
    <== (parent.Container_intf.read_ack |: parent.Container_intf.write_ack);
    par_data <== parent.Container_intf.read_data;
    let framebuf =
      vector ~name:(name ^ "_fb") ~length:n_pixels ~width:label_bits
        {
          Container_intf.read_req = is p2_read_fb;
          write_req = is p1_write_fb;
          addr = mux2 (is p1_write_fb) fb1 fb2;
          write_data = label_r;
        }
    in
    fb_ack
    <== (framebuf.Container_intf.read_ack |: framebuf.Container_intf.write_ack);
    fb_data <== framebuf.Container_intf.read_data;
    let dense =
      vector ~name:(name ^ "_dense") ~length:lmax ~width:label_bits
        {
          Container_intf.read_req = is p2_read_dense;
          write_req = is p2_write_dense;
          addr = a_r;
          write_data = next_dense;
        }
    in
    dn_ack <== (dense.Container_intf.read_ack |: dense.Container_intf.write_ack);
    dn_data <== dense.Container_intf.read_data;

    (* --- Control. -------------------------------------------------------- *)
    let union_done = is p1_union &: par_ack in
    let prev_written = is p1_write_prev &: prev_ack in
    let fb_read = is p2_read_fb &: fb_ack in
    Fsm.transitions fsm
      [
        (p1_fetch, [ (got, p1_read_up) ]);
        ( p1_read_up,
          [
            (new_component, p1_new_label);
            (needs_union, p1_find_a);
            (take_one |: background, p1_write_prev);
          ] );
        (p1_new_label, [ (par_ack, p1_write_prev) ]);
        (p1_find_a, [ (step_a &: a_is_root, p1_find_b) ]);
        ( p1_find_b,
          [
            (step_b &: b_is_root &: (root_a ==: b_r), p1_write_prev);
            (step_b &: b_is_root, p1_union);
          ] );
        (p1_union, [ (union_done, p1_write_prev) ]);
        (p1_write_prev, [ (prev_written, p1_write_fb) ]);
        ( p1_write_fb,
          [ (fb_written &: last_px, p2_read_fb); (fb_written, p1_fetch) ] );
        ( p2_read_fb,
          [
            (fb_read &: (fb_data ==: zero lz), p2_emit);
            (fb_read, p2_find);
          ] );
        (p2_find, [ (p2_step &: p2_at_root, p2_read_dense) ]);
        ( p2_read_dense,
          [ (dense_hit, p2_emit); (dense_miss, p2_write_dense) ] );
        (p2_write_dense, [ (dn_ack, p2_emit) ]);
        (p2_emit, [ (emitted &: last_out, halt); (emitted, p2_read_fb) ]);
        (halt, []);
      ];
    done_w <== is halt;
    labels_used_w <== (next_dense -: one label_bits)
  in
  {
    src_driver;
    dst_driver;
    connect;
    done_ = done_w;
    labels_used = labels_used_w;
  }
