open Hwpat_rtl
open Hwpat_containers
open Hwpat_iterators

(** Binary image labelling in hardware — the domain algorithm the
    paper's §5 singles out ("binary image labelling for image
    processing applications").

    Two-pass connected components with 4-connectivity, the classic
    streaming formulation:

    - pass 1 walks the pixel stream keeping the previous row's labels
      in a vector container, assigns provisional labels, and records
      merges in a union-find parent table (another vector);
    - pass 2 replays the provisional frame from a frame-buffer vector,
      resolves each label to its root, and maps roots to dense ids
      (1, 2, …) in first-seen raster order through a fourth vector.

    Results are bit-identical to the model-domain
    {!Hwpat_model.Algorithm.label_frame}. All four tables are ordinary
    vector containers, so they can be retargeted (block RAM by default,
    external SRAM via [vector]) without touching this FSM — the
    pattern's decoupling applied to a far bigger algorithm than copy.

    Capacity: provisional labels are [label_bits] wide; the image may
    not need more than [2^label_bits - 1] of them (a checkerboard needs
    one per two pixels; size accordingly). *)

type t = {
  src_driver : Iterator_intf.driver;  (** pixel input (fg = non-zero) *)
  dst_driver : Iterator_intf.driver;  (** dense labels out, [label_bits] wide *)
  connect : src:Iterator_intf.t -> dst:Iterator_intf.t -> unit;
  done_ : Signal.t;
  labels_used : Signal.t;  (** dense component count once [done_] *)
}

val create :
  ?name:string ->
  ?vector:
    (name:string -> length:int -> width:int ->
     Container_intf.random_driver -> Container_intf.random) ->
  width:int ->
  label_bits:int ->
  image_width:int ->
  image_height:int ->
  unit ->
  t
(** [vector] is the target factory for the four internal tables
    (default {!Hwpat_containers.Vector_c.over_bram}). *)
