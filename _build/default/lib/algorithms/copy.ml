type t = Transform.t

let create ?(name = "copy") ?enable ?limit ~width () =
  Transform.create ~name ?enable ?limit ~width ~f:(fun x -> x) ()
