open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_iterators

type t = {
  src_driver : Iterator_intf.driver;
  connect : src:Iterator_intf.t -> unit;
  sum : Signal.t;
  done_ : Signal.t;
}

let st_fetch = 0
let st_halt = 1

let create ?(name = "acc") ~width ~count () =
  if count < 1 then invalid_arg "Accumulate.create: count must be >= 1";
  let fetch_req = wire 1 in
  let src_driver =
    {
      (Iterator_intf.driver_stub ~data_width:width ~pos_width:1) with
      Iterator_intf.read_req = fetch_req;
      inc_req = fetch_req;
    }
  in
  let sw = width + 16 in
  let sum_w = wire sw in
  let sum = reg sum_w -- (name ^ "_sum") in
  let cw = Util.bits_to_represent count in
  let seen_w = wire cw in
  let seen = reg seen_w -- (name ^ "_seen") in
  let done_w = wire 1 in
  let connect ~(src : Iterator_intf.t) =
    let fsm = Fsm.create ~name:(name ^ "_state") ~states:2 () in
    let in_fetch = Fsm.is fsm st_fetch in
    fetch_req <== in_fetch;
    let got = in_fetch &: src.Iterator_intf.read_ack in
    sum_w <== mux2 got (sum +: uresize src.Iterator_intf.read_data sw) sum;
    seen_w <== mux2 got (seen +: one cw) seen;
    let last = got &: (seen ==: of_int ~width:cw (count - 1)) in
    Fsm.transitions fsm [ (st_fetch, [ (last, st_halt) ]); (st_halt, []) ];
    done_w <== Fsm.is fsm st_halt
  in
  { src_driver; connect; sum; done_ = done_w }
