(** VHDL-93 netlist back-end.

    Emits one entity/architecture pair per circuit. All ports and
    internal signals are [std_logic_vector] (width-1 downto 0); a [clk]
    input port is added when the circuit contains registers or memory
    ports. Arithmetic uses [ieee.numeric_std]. *)

val to_string : Circuit.t -> string

val output : Format.formatter -> Circuit.t -> unit

val clock_name : string
(** Name of the implicit clock port ("clk"). *)
