type t = {
  nodes : int;
  register_bits : int;
  memory_bits : int;
  memories : int;
  inputs : int;
  outputs : int;
  op2_nodes : int;
  mux_nodes : int;
  wire_nodes : int;
}

let of_circuit circuit =
  let signals = Circuit.signals circuit in
  let count pred = List.length (List.filter pred signals) in
  {
    nodes = List.length signals;
    register_bits =
      List.fold_left
        (fun acc s ->
          match Signal.prim s with Signal.Reg _ -> acc + Signal.width s | _ -> acc)
        0 signals;
    memory_bits =
      List.fold_left
        (fun acc m -> acc + (Signal.memory_size m * Signal.memory_width m))
        0 (Circuit.memories circuit);
    memories = List.length (Circuit.memories circuit);
    inputs = List.length (Circuit.inputs circuit);
    outputs = List.length (Circuit.outputs circuit);
    op2_nodes = count (fun s -> match Signal.prim s with Signal.Op2 _ -> true | _ -> false);
    mux_nodes = count (fun s -> match Signal.prim s with Signal.Mux _ -> true | _ -> false);
    wire_nodes = count (fun s -> match Signal.prim s with Signal.Wire _ -> true | _ -> false);
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>nodes: %d@ register bits: %d@ memory bits: %d (%d memories)@ ports: %d in / %d out@ op2: %d  mux: %d  wire: %d@]"
    t.nodes t.register_bits t.memory_bits t.memories t.inputs t.outputs t.op2_nodes
    t.mux_nodes t.wire_nodes
