open Signal

type t = {
  width : int;
  states : int;
  state : Signal.t;
  next : Signal.t; (* unassigned wire until [transitions] *)
  mutable closed : bool;
}

let create ?name ?clear ~states () =
  if states < 2 then invalid_arg "Fsm.create: need at least two states";
  let width = Util.address_bits states in
  let next = wire width in
  let state = reg ?clear next in
  let state = match name with Some n -> state -- n | None -> state in
  { width; states; state; next; closed = false }

let state t = t.state

let is t i =
  if i < 0 || i >= t.states then invalid_arg "Fsm.is: no such state";
  t.state ==: of_int ~width:t.width i

let transitions t per_state =
  if t.closed then invalid_arg "Fsm.transitions: already closed";
  t.closed <- true;
  let encode i =
    if i < 0 || i >= t.states then invalid_arg "Fsm.transitions: no such state";
    of_int ~width:t.width i
  in
  let next_for rules =
    List.fold_right
      (fun (cond, target) fallthrough -> mux2 cond (encode target) fallthrough)
      rules t.state
  in
  (* Dense next-state table selected by the state register: one n-way
     mux instead of a linear priority chain, so FSM depth does not grow
     with the state count. *)
  let table =
    List.init t.states (fun st ->
        match List.assoc_opt st per_state with
        | Some rules -> next_for rules
        | None -> t.state)
  in
  t.next <== mux t.state table
