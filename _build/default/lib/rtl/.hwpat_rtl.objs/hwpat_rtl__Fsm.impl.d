lib/rtl/fsm.ml: List Signal Util
