lib/rtl/vcd.ml: Bits Buffer Char Circuit Cyclesim Fun Hashtbl List Printf Signal String
