lib/rtl/signal.mli: Bits Format
