lib/rtl/vcd.mli: Cyclesim Signal
