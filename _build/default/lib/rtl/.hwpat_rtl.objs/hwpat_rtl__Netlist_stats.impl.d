lib/rtl/netlist_stats.ml: Circuit Format List Signal
