lib/rtl/fsm.mli: Signal
