lib/rtl/signal.ml: Bits Format List Printf String
