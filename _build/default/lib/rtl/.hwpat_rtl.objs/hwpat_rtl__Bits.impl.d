lib/rtl/bits.ml: Array Format Int64 List Printf Random String
