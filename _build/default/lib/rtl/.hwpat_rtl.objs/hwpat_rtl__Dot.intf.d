lib/rtl/dot.mli: Circuit
