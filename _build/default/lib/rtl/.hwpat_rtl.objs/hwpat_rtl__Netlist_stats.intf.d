lib/rtl/netlist_stats.mli: Circuit Format
