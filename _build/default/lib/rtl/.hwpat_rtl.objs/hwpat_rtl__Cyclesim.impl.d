lib/rtl/cyclesim.ml: Array Bits Circuit Hashtbl List Printf Signal
