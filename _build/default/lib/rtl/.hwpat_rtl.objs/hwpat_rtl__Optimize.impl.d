lib/rtl/optimize.ml: Bits Circuit Hashtbl List Option Signal
