lib/rtl/vhdl.ml: Bits Buffer Circuit Format List Printf Signal String
