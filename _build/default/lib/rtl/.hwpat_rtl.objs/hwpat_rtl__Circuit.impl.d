lib/rtl/circuit.ml: Fmt Hashtbl Int List Map Printf Set Signal String
