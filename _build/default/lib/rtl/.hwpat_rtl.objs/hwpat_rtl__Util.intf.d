lib/rtl/util.mli:
