lib/rtl/util.ml:
