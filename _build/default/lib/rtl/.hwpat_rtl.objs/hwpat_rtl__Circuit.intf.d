lib/rtl/circuit.mli: Signal
