lib/rtl/dot.ml: Bits Buffer Circuit Fun List Printf Signal
