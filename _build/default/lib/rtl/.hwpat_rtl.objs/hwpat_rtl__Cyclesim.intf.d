lib/rtl/cyclesim.mli: Bits Circuit Signal
