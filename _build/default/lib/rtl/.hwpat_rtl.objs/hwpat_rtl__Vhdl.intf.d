lib/rtl/vhdl.mli: Circuit Format
