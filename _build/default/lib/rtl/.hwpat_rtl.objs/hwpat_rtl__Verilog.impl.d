lib/rtl/verilog.ml: Bits Buffer Circuit Format List Printf Signal String
