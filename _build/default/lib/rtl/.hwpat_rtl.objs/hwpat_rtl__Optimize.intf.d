lib/rtl/optimize.mli: Circuit Signal
