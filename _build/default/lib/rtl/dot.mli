(** Graphviz export of a circuit's signal graph — handy for inspecting
    generated container/iterator structures visually.

    Nodes are labelled by primitive kind (and user name when present);
    registers and memory reads are drawn as boxes to mark the
    sequential boundary; inputs/outputs as ovals. *)

val to_string : Circuit.t -> string

val write_file : Circuit.t -> string -> unit
