(** Raw structural statistics of a circuit (pre-technology-mapping). *)

type t = {
  nodes : int;          (** total graph nodes *)
  register_bits : int;  (** sum of register widths *)
  memory_bits : int;    (** sum of size × width over memories *)
  memories : int;
  inputs : int;
  outputs : int;
  op2_nodes : int;
  mux_nodes : int;
  wire_nodes : int;
}

val of_circuit : Circuit.t -> t

val pp : Format.formatter -> t -> unit
