let clock_name = "clk"

let is_sequential s =
  match Signal.prim s with
  | Signal.Reg _ | Signal.Mem_read_sync _ -> true
  | _ -> false

let has_state circuit =
  List.exists is_sequential (Circuit.signals circuit)
  || Circuit.memories circuit <> []

(* Internal signal name for a node. User names win; they are suffixed
   with the uid to stay unique. *)
let sig_name s =
  match Signal.names s with
  | name :: _ -> Printf.sprintf "%s_%d" name (Signal.uid s)
  | [] -> Printf.sprintf "s_%d" (Signal.uid s)

let slv_type width = Printf.sprintf "std_logic_vector(%d downto 0)" (width - 1)

let const_literal bits =
  Printf.sprintf "\"%s\"" (Bits.to_string bits)

(* Reference to a node: inputs are referenced by port name, constants
   inline, everything else through its declared signal. *)
let ref_of s =
  match Signal.prim s with
  | Signal.Input name -> name
  | Signal.Const b -> const_literal b
  | _ -> sig_name s

let uns s = Printf.sprintf "unsigned(%s)" (ref_of s)

let op2_rhs op a b w =
  match op with
  | Signal.Add -> Printf.sprintf "std_logic_vector(%s + %s)" (uns a) (uns b)
  | Signal.Sub -> Printf.sprintf "std_logic_vector(%s - %s)" (uns a) (uns b)
  | Signal.Mul ->
    Printf.sprintf "std_logic_vector(resize(%s * %s, %d))" (uns a) (uns b) w
  | Signal.And -> Printf.sprintf "%s and %s" (ref_of a) (ref_of b)
  | Signal.Or -> Printf.sprintf "%s or %s" (ref_of a) (ref_of b)
  | Signal.Xor -> Printf.sprintf "%s xor %s" (ref_of a) (ref_of b)
  | Signal.Eq ->
    Printf.sprintf "\"1\" when %s = %s else \"0\"" (ref_of a) (ref_of b)
  | Signal.Lt ->
    Printf.sprintf "\"1\" when %s < %s else \"0\"" (uns a) (uns b)

let mem_sig m = Printf.sprintf "%s_%d" (Signal.memory_name m) (Signal.memory_uid m)

let emit buffer fmt = Printf.ksprintf (Buffer.add_string buffer) fmt

let declare_signals buf circuit =
  List.iter
    (fun s ->
      match Signal.prim s with
      | Signal.Input _ | Signal.Const _ -> ()
      | _ -> emit buf "  signal %s : %s;\n" (sig_name s) (slv_type (Signal.width s)))
    (Circuit.signals circuit)

let declare_memories buf circuit =
  List.iter
    (fun m ->
      let name = mem_sig m in
      emit buf "  type %s_t is array (0 to %d) of %s;\n" name
        (Signal.memory_size m - 1)
        (slv_type (Signal.memory_width m));
      emit buf "  signal %s : %s_t := (others => (others => '0'));\n" name name)
    (Circuit.memories circuit)

let emit_comb buf s =
  let lhs = sig_name s in
  match Signal.prim s with
  | Signal.Const _ | Signal.Input _ -> ()
  | Signal.Op2 (op, a, b) ->
    emit buf "  %s <= %s;\n" lhs (op2_rhs op a b (Signal.width s))
  | Signal.Not a -> emit buf "  %s <= not %s;\n" lhs (ref_of a)
  | Signal.Concat parts ->
    emit buf "  %s <= %s;\n" lhs (String.concat " & " (List.map ref_of parts))
  | Signal.Select { src; high; low } ->
    if Signal.width src = 1 then emit buf "  %s <= %s;\n" lhs (ref_of src)
    else emit buf "  %s <= %s(%d downto %d);\n" lhs (ref_of src) high low
  | Signal.Mux { select; cases } ->
    let n = List.length cases in
    let branches =
      List.mapi
        (fun i c ->
          if i = n - 1 then Printf.sprintf "%s" (ref_of c)
          else
            Printf.sprintf "%s when to_integer(%s) = %d else" (ref_of c)
              (uns select) i)
        cases
    in
    emit buf "  %s <= %s;\n" lhs (String.concat "\n          " branches)
  | Signal.Mem_read_async { memory; addr } ->
    emit buf "  %s <= %s(to_integer(%s));\n" lhs (mem_sig memory) (uns addr)
  | Signal.Wire { driver = Some d } -> emit buf "  %s <= %s;\n" lhs (ref_of d)
  | Signal.Wire { driver = None } -> assert false
  | Signal.Reg _ | Signal.Mem_read_sync _ -> ()

let emit_reg buf s =
  match Signal.prim s with
  | Signal.Reg { d; enable; clear; clear_to; _ } ->
    let lhs = sig_name s in
    emit buf "  process (%s)\n  begin\n    if rising_edge(%s) then\n" clock_name
      clock_name;
    let indent = ref "      " in
    (match clear with
    | Some c ->
      emit buf "%sif %s = \"1\" then\n" !indent (ref_of c);
      emit buf "%s  %s <= %s;\n" !indent lhs (const_literal clear_to);
      (match enable with
      | Some e -> emit buf "%selsif %s = \"1\" then\n" !indent (ref_of e)
      | None -> emit buf "%selse\n" !indent);
      indent := !indent ^ "  "
    | None ->
      (match enable with
      | Some e ->
        emit buf "%sif %s = \"1\" then\n" !indent (ref_of e);
        indent := !indent ^ "  "
      | None -> ()));
    emit buf "%s%s <= %s;\n" !indent lhs (ref_of d);
    (match (clear, enable) with
    | Some _, _ | _, Some _ -> emit buf "      end if;\n"
    | None, None -> ());
    emit buf "    end if;\n  end process;\n\n"
  | Signal.Mem_read_sync { memory; addr; enable } ->
    let lhs = sig_name s in
    emit buf "  process (%s)\n  begin\n    if rising_edge(%s) then\n" clock_name
      clock_name;
    (match enable with
    | Some e ->
      emit buf "      if %s = \"1\" then\n" (ref_of e);
      emit buf "        %s <= %s(to_integer(%s));\n" lhs (mem_sig memory) (uns addr);
      emit buf "      end if;\n"
    | None ->
      emit buf "      %s <= %s(to_integer(%s));\n" lhs (mem_sig memory) (uns addr));
    emit buf "    end if;\n  end process;\n\n"
  | _ -> ()

let emit_memory_writes buf m =
  let ports = Signal.memory_write_ports m in
  if ports <> [] then begin
    emit buf "  process (%s)\n  begin\n    if rising_edge(%s) then\n" clock_name
      clock_name;
    List.iter
      (fun (enable, addr, data) ->
        emit buf "      if %s = \"1\" then\n" (ref_of enable);
        emit buf "        %s(to_integer(%s)) <= %s;\n" (mem_sig m) (uns addr)
          (ref_of data);
        emit buf "      end if;\n")
      ports;
    emit buf "    end if;\n  end process;\n\n"
  end

let to_string circuit =
  let buf = Buffer.create 4096 in
  emit buf "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n";
  emit buf "entity %s is\n  port (\n" (Circuit.name circuit);
  let ports = ref [] in
  if has_state circuit then
    ports := [ Printf.sprintf "    %s : in std_logic" clock_name ];
  List.iter
    (fun (n, s) ->
      ports :=
        Printf.sprintf "    %s : in %s" n (slv_type (Signal.width s)) :: !ports)
    (Circuit.inputs circuit);
  List.iter
    (fun (n, s) ->
      ports :=
        Printf.sprintf "    %s : out %s" n (slv_type (Signal.width s)) :: !ports)
    (Circuit.outputs circuit);
  emit buf "%s\n  );\nend %s;\n\n" (String.concat ";\n" (List.rev !ports))
    (Circuit.name circuit);
  emit buf "architecture rtl of %s is\n" (Circuit.name circuit);
  declare_signals buf circuit;
  declare_memories buf circuit;
  emit buf "begin\n";
  List.iter (fun s -> emit_comb buf s) (Circuit.signals circuit);
  emit buf "\n";
  List.iter (fun s -> emit_reg buf s) (Circuit.signals circuit);
  List.iter (fun m -> emit_memory_writes buf m) (Circuit.memories circuit);
  List.iter
    (fun (n, s) -> emit buf "  %s <= %s;\n" n (ref_of s))
    (Circuit.outputs circuit);
  emit buf "end rtl;\n";
  Buffer.contents buf

let output fmt circuit = Format.pp_print_string fmt (to_string circuit)
