(** Verilog-2001 netlist back-end.

    Emits one module per circuit. A [clk] input is added when the
    circuit contains registers or memory ports. *)

val to_string : Circuit.t -> string

val output : Format.formatter -> Circuit.t -> unit
