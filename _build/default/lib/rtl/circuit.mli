(** Closed netlists with named ports.

    A circuit is built from a list of named output wires. All inputs
    reachable from the outputs become the circuit's input ports. *)

type t

val create_exn : name:string -> (string * Signal.t) list -> t
(** [create_exn ~name outputs] closes the graph reachable from
    [outputs]. Raises [Invalid_argument] if: an output name is
    duplicated, two distinct input nodes share a name, an input width
    conflicts, a wire has no driver, or the combinational graph is
    cyclic. Each output signal is wrapped in a named wire if needed. *)

val name : t -> string

val inputs : t -> (string * Signal.t) list
(** Input ports, sorted by name. *)

val outputs : t -> (string * Signal.t) list
(** Output ports in creation order. *)

val find_input : t -> string -> Signal.t
val find_output : t -> string -> Signal.t

val signals : t -> Signal.t list
(** Every node reachable from the outputs (including through register
    and memory write-port dependencies), in dependency-respecting
    order: a node appears after all its combinational dependencies. *)

val memories : t -> Signal.memory list
(** Distinct memories used by the circuit, in first-use order. *)

val registers : t -> Signal.t list
(** All [Reg] nodes. *)
