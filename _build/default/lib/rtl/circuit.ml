type t = {
  name : string;
  inputs : (string * Signal.t) list;
  outputs : (string * Signal.t) list;
  schedule : Signal.t list;
  memories : Signal.memory list;
}

module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)

(* Dependencies that must be evaluated before a node within one
   combinational settle. Registers and synchronous memory reads output
   stored state, so they have none. *)
let comb_deps s =
  match Signal.prim s with
  | Signal.Reg _ | Signal.Mem_read_sync _ -> []
  | Signal.Mem_read_async { addr; _ } -> [ addr ]
  | _ -> Signal.deps s

let collect_reachable outputs =
  let seen = ref Int_set.empty in
  let nodes = ref [] in
  let rec visit s =
    if not (Int_set.mem (Signal.uid s) !seen) then begin
      seen := Int_set.add (Signal.uid s) !seen;
      (match Signal.prim s with
      | Signal.Wire { driver = None } ->
        invalid_arg
          (Fmt.str "Circuit: undriven wire %a" Signal.pp s)
      | _ -> ());
      List.iter visit (Signal.deps s);
      nodes := s :: !nodes
    end
  in
  List.iter visit outputs;
  List.rev !nodes

(* Topological sort over combinational edges; detects cycles. *)
let schedule_nodes nodes =
  let state = Hashtbl.create 97 in
  (* 0 = visiting, 1 = done *)
  let order = ref [] in
  let rec visit s =
    match Hashtbl.find_opt state (Signal.uid s) with
    | Some 1 -> ()
    | Some _ ->
      invalid_arg (Fmt.str "Circuit: combinational cycle through %a" Signal.pp s)
    | None ->
      Hashtbl.add state (Signal.uid s) 0;
      List.iter visit (comb_deps s);
      Hashtbl.replace state (Signal.uid s) 1;
      order := s :: !order
  in
  List.iter visit nodes;
  List.rev !order

let create_exn ~name outputs =
  (match outputs with
  | [] -> invalid_arg "Circuit.create_exn: no outputs"
  | _ -> ());
  let output_names = List.map fst outputs in
  let sorted = List.sort_uniq String.compare output_names in
  if List.length sorted <> List.length output_names then
    invalid_arg "Circuit.create_exn: duplicate output name";
  let nodes = collect_reachable (List.map snd outputs) in
  let schedule = schedule_nodes nodes in
  let inputs =
    List.filter_map
      (fun s ->
        match Signal.prim s with Signal.Input n -> Some (n, s) | _ -> None)
      nodes
  in
  let by_name = Hashtbl.create 17 in
  List.iter
    (fun (n, s) ->
      match Hashtbl.find_opt by_name n with
      | Some s' when Signal.uid s' <> Signal.uid s ->
        invalid_arg (Printf.sprintf "Circuit.create_exn: duplicate input name %s" n)
      | _ -> Hashtbl.replace by_name n s)
    inputs;
  let memories =
    let seen = ref Int_set.empty in
    List.filter_map
      (fun s ->
        match Signal.prim s with
        | Signal.Mem_read_async { memory; _ } | Signal.Mem_read_sync { memory; _ } ->
          let uid = Signal.memory_uid memory in
          if Int_set.mem uid !seen then None
          else begin
            seen := Int_set.add uid !seen;
            Some memory
          end
        | _ -> None)
      nodes
  in
  let inputs = List.sort (fun (a, _) (b, _) -> String.compare a b) inputs in
  { name; inputs; outputs; schedule; memories }

let name t = t.name
let inputs t = t.inputs
let outputs t = t.outputs

let find_port kind ports port_name =
  match List.assoc_opt port_name ports with
  | Some s -> s
  | None ->
    invalid_arg (Printf.sprintf "Circuit: no %s port named %s" kind port_name)

let find_input t n = find_port "input" t.inputs n
let find_output t n = find_port "output" t.outputs n
let signals t = t.schedule
let memories t = t.memories

let registers t =
  List.filter (fun s -> match Signal.prim s with Signal.Reg _ -> true | _ -> false)
    t.schedule
