let clock_name = "clk"

let is_sequential s =
  match Signal.prim s with
  | Signal.Reg _ | Signal.Mem_read_sync _ -> true
  | _ -> false

let has_state circuit =
  List.exists is_sequential (Circuit.signals circuit)
  || Circuit.memories circuit <> []

let sig_name s =
  match Signal.names s with
  | name :: _ -> Printf.sprintf "%s_%d" name (Signal.uid s)
  | [] -> Printf.sprintf "s_%d" (Signal.uid s)

let range width = if width = 1 then "" else Printf.sprintf "[%d:0] " (width - 1)

let const_literal bits =
  Printf.sprintf "%d'b%s" (Bits.width bits) (Bits.to_string bits)

let ref_of s =
  match Signal.prim s with
  | Signal.Input name -> name
  | Signal.Const b -> const_literal b
  | _ -> sig_name s

let mem_sig m = Printf.sprintf "%s_%d" (Signal.memory_name m) (Signal.memory_uid m)

let emit buffer fmt = Printf.ksprintf (Buffer.add_string buffer) fmt

let op2_rhs op a b =
  let sym =
    match op with
    | Signal.Add -> "+"
    | Signal.Sub -> "-"
    | Signal.Mul -> "*"
    | Signal.And -> "&"
    | Signal.Or -> "|"
    | Signal.Xor -> "^"
    | Signal.Eq -> "=="
    | Signal.Lt -> "<"
  in
  Printf.sprintf "%s %s %s" (ref_of a) sym (ref_of b)

let emit_comb buf s =
  let lhs = sig_name s in
  match Signal.prim s with
  | Signal.Const _ | Signal.Input _ -> ()
  | Signal.Op2 (op, a, b) -> emit buf "  assign %s = %s;\n" lhs (op2_rhs op a b)
  | Signal.Not a -> emit buf "  assign %s = ~%s;\n" lhs (ref_of a)
  | Signal.Concat parts ->
    emit buf "  assign %s = {%s};\n" lhs (String.concat ", " (List.map ref_of parts))
  | Signal.Select { src; high; low } ->
    if Signal.width src = 1 then emit buf "  assign %s = %s;\n" lhs (ref_of src)
    else emit buf "  assign %s = %s[%d:%d];\n" lhs (ref_of src) high low
  | Signal.Mux { select; cases } ->
    let n = List.length cases in
    let rec chain i = function
      | [] -> assert false
      | [ last ] -> ref_of last
      | c :: rest ->
        Printf.sprintf "%s == %d ? %s : %s" (ref_of select) i (ref_of c)
          (chain (i + 1) rest)
    in
    ignore n;
    emit buf "  assign %s = %s;\n" lhs (chain 0 cases)
  | Signal.Mem_read_async { memory; addr } ->
    emit buf "  assign %s = %s[%s];\n" lhs (mem_sig memory) (ref_of addr)
  | Signal.Wire { driver = Some d } -> emit buf "  assign %s = %s;\n" lhs (ref_of d)
  | Signal.Wire { driver = None } -> assert false
  | Signal.Reg _ | Signal.Mem_read_sync _ -> ()

let emit_seq buf s =
  match Signal.prim s with
  | Signal.Reg { d; enable; clear; clear_to; _ } ->
    let lhs = sig_name s in
    emit buf "  always @(posedge %s) begin\n" clock_name;
    (match (clear, enable) with
    | Some c, Some e ->
      emit buf "    if (%s) %s <= %s;\n" (ref_of c) lhs (const_literal clear_to);
      emit buf "    else if (%s) %s <= %s;\n" (ref_of e) lhs (ref_of d)
    | Some c, None ->
      emit buf "    if (%s) %s <= %s;\n" (ref_of c) lhs (const_literal clear_to);
      emit buf "    else %s <= %s;\n" lhs (ref_of d)
    | None, Some e -> emit buf "    if (%s) %s <= %s;\n" (ref_of e) lhs (ref_of d)
    | None, None -> emit buf "    %s <= %s;\n" lhs (ref_of d));
    emit buf "  end\n\n"
  | Signal.Mem_read_sync { memory; addr; enable } ->
    let lhs = sig_name s in
    emit buf "  always @(posedge %s) begin\n" clock_name;
    (match enable with
    | Some e ->
      emit buf "    if (%s) %s <= %s[%s];\n" (ref_of e) lhs (mem_sig memory)
        (ref_of addr)
    | None -> emit buf "    %s <= %s[%s];\n" lhs (mem_sig memory) (ref_of addr));
    emit buf "  end\n\n"
  | _ -> ()

let emit_memory buf m =
  emit buf "  reg %s%s [0:%d];\n" (range (Signal.memory_width m)) (mem_sig m)
    (Signal.memory_size m - 1);
  let ports = Signal.memory_write_ports m in
  if ports <> [] then begin
    emit buf "  always @(posedge %s) begin\n" clock_name;
    List.iter
      (fun (enable, addr, data) ->
        emit buf "    if (%s) %s[%s] <= %s;\n" (ref_of enable) (mem_sig m)
          (ref_of addr) (ref_of data))
      ports;
    emit buf "  end\n\n"
  end

let to_string circuit =
  let buf = Buffer.create 4096 in
  let ports = ref [] in
  if has_state circuit then ports := [ clock_name ];
  List.iter (fun (n, _) -> ports := n :: !ports) (Circuit.inputs circuit);
  List.iter (fun (n, _) -> ports := n :: !ports) (Circuit.outputs circuit);
  emit buf "module %s (%s);\n" (Circuit.name circuit)
    (String.concat ", " (List.rev !ports));
  if has_state circuit then emit buf "  input %s;\n" clock_name;
  List.iter
    (fun (n, s) -> emit buf "  input %s%s;\n" (range (Signal.width s)) n)
    (Circuit.inputs circuit);
  List.iter
    (fun (n, s) -> emit buf "  output %s%s;\n" (range (Signal.width s)) n)
    (Circuit.outputs circuit);
  emit buf "\n";
  List.iter
    (fun s ->
      match Signal.prim s with
      | Signal.Input _ | Signal.Const _ -> ()
      | Signal.Reg _ | Signal.Mem_read_sync _ ->
        emit buf "  reg %s%s;\n" (range (Signal.width s)) (sig_name s)
      | _ -> emit buf "  wire %s%s;\n" (range (Signal.width s)) (sig_name s))
    (Circuit.signals circuit);
  List.iter (fun m -> emit_memory buf m) (Circuit.memories circuit);
  emit buf "\n";
  List.iter (fun s -> emit_comb buf s) (Circuit.signals circuit);
  emit buf "\n";
  List.iter (fun s -> emit_seq buf s) (Circuit.signals circuit);
  List.iter
    (fun (n, s) -> emit buf "  assign %s = %s;\n" n (ref_of s))
    (Circuit.outputs circuit);
  emit buf "endmodule\n";
  Buffer.contents buf

let output fmt circuit = Format.pp_print_string fmt (to_string circuit)
