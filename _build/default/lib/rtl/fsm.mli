(** Finite state machine builder.

    A small helper over {!Signal.reg_fb}: create the machine with its
    state count, describe transitions as a priority list per state, and
    read one-hot decode signals. States are plain integers; callers
    typically bind them to named constants. *)

type t

val create : ?name:string -> ?clear:Signal.t -> states:int -> unit -> t
(** A state register wide enough for [states] values, starting (and
    clearing) to state 0. *)

val state : t -> Signal.t
(** The current state value. *)

val is : t -> int -> Signal.t
(** [is fsm i] is a 1-bit signal, high when the machine is in state [i]. *)

val transitions : t -> (int * (Signal.t * int) list) list -> unit
(** [transitions fsm per_state] closes the machine. For each
    [(state, rules)] pair, [rules] is a priority-ordered list of
    [(condition, target)]; the first true condition wins, otherwise the
    machine holds its state. States without an entry hold forever.
    Must be called exactly once. *)
