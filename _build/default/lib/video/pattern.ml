let clamp ~depth v = v land ((1 lsl depth) - 1)

let gradient ~width ~height ~depth =
  Frame.init ~width ~height ~depth (fun ~x ~y -> clamp ~depth (x + y))

let checkerboard ?(cell = 2) ~width ~height ~depth () =
  let hi = (1 lsl depth) - 1 in
  Frame.init ~width ~height ~depth (fun ~x ~y ->
      if (x / cell + (y / cell)) mod 2 = 0 then hi else 0)

let random ?(seed = 0) ~width ~height ~depth () =
  let state = Random.State.make [| seed |] in
  Frame.init ~width ~height ~depth (fun ~x:_ ~y:_ ->
      Random.State.int state (1 lsl depth))

let constant ~value ~width ~height ~depth =
  Frame.init ~width ~height ~depth (fun ~x:_ ~y:_ -> value)

let bars ~width ~height ~depth =
  let levels = 8 in
  let hi = (1 lsl depth) - 1 in
  Frame.init ~width ~height ~depth (fun ~x ~y:_ ->
      x * levels / width * hi / (levels - 1))

let rgb_gradient ~width ~height =
  Frame.init ~width ~height ~depth:24 (fun ~x ~y ->
      Frame.rgb
        ~r:(x * 255 / max 1 (width - 1))
        ~g:(y * 255 / max 1 (height - 1))
        ~b:((x + y) * 255 / max 1 (width + height - 2)))
