(** Synthetic test frames — the stand-in for the paper's camera. *)

val gradient : width:int -> height:int -> depth:int -> Frame.t
(** Diagonal intensity ramp. *)

val checkerboard : ?cell:int -> width:int -> height:int -> depth:int -> unit -> Frame.t

val random : ?seed:int -> width:int -> height:int -> depth:int -> unit -> Frame.t

val constant : value:int -> width:int -> height:int -> depth:int -> Frame.t

val bars : width:int -> height:int -> depth:int -> Frame.t
(** Vertical bars of stepped intensity (colour-bar style). *)

val rgb_gradient : width:int -> height:int -> Frame.t
(** 24-bit frame with distinct ramps per channel. *)
