let copy frame =
  Frame.init ~width:(Frame.width frame) ~height:(Frame.height frame)
    ~depth:(Frame.depth frame) (fun ~x ~y -> Frame.get frame ~x ~y)

let transform ~f frame = Frame.map frame ~f

let blur frame =
  let w = Frame.width frame and h = Frame.height frame in
  if w < 3 || h < 3 then invalid_arg "Reference.blur: frame too small";
  Frame.init ~width:(w - 2) ~height:(h - 2) ~depth:(Frame.depth frame)
    (fun ~x ~y ->
      let window =
        Array.init 3 (fun r ->
            Array.init 3 (fun c -> Frame.get frame ~x:(x + c) ~y:(y + r)))
      in
      Hwpat_algorithms.Blur.reference_pixel ~window)

let sobel frame =
  let w = Frame.width frame and h = Frame.height frame in
  if w < 3 || h < 3 then invalid_arg "Reference.sobel: frame too small";
  Frame.init ~width:(w - 2) ~height:(h - 2) ~depth:(Frame.depth frame)
    (fun ~x ~y ->
      let window =
        Array.init 3 (fun r ->
            Array.init 3 (fun c -> Frame.get frame ~x:(x + c) ~y:(y + r)))
      in
      Hwpat_algorithms.Sobel.reference_pixel ~window ~width:(Frame.depth frame))

let accumulate frame =
  List.fold_left ( + ) 0 (Frame.to_row_major frame)

let find ~target frame =
  let rec go i = function
    | [] -> None
    | v :: rest -> if v = target then Some i else go (i + 1) rest
  in
  go 0 (Frame.to_row_major frame)
