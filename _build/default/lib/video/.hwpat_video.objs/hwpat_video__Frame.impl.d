lib/video/frame.ml: Array Buffer List Printf String
