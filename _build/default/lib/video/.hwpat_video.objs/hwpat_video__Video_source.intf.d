lib/video/video_source.mli: Cyclesim Frame Hwpat_rtl
