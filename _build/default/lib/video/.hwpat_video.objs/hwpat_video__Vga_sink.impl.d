lib/video/vga_sink.ml: Bits Cyclesim Frame Hwpat_rtl List
