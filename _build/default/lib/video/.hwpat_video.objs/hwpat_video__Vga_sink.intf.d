lib/video/vga_sink.mli: Cyclesim Frame Hwpat_rtl
