lib/video/pattern.ml: Frame Random
