lib/video/frame.mli:
