lib/video/pattern.mli: Frame
