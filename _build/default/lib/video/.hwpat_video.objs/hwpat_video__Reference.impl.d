lib/video/reference.ml: Array Frame Hwpat_algorithms List
