lib/video/video_source.ml: Bits Cyclesim Frame Hwpat_rtl
