lib/video/reference.mli: Frame
