open Hwpat_rtl

(** Simulation-side video decoder model (the SAA7113 stand-in).

    Streams a frame's pixels into a circuit through a valid/ready
    handshake, one [drive]/[observe] pair per simulated cycle:

    {[ while not (Video_source.exhausted src) do
         Video_source.drive src;
         Cyclesim.cycle sim;
         Video_source.observe src
       done ]}

    [drive] presents the current pixel on the valid/data input ports;
    [observe] (after the cycle) checks the ready output and advances
    past consumed pixels. *)

type t

val create :
  ?valid_port:string ->
  ?data_port:string ->
  ?ready_port:string ->
  Cyclesim.t ->
  Frame.t ->
  t
(** Port-name defaults: ["px_valid"], ["px_data"], ["px_ready"]. *)

val drive : t -> unit
val observe : t -> unit
val exhausted : t -> bool
val sent : t -> int

val restart : t -> Frame.t -> unit
(** Start streaming a new frame (same dimensions). *)
