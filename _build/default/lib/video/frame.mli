(** Pixel frames for the video pipeline experiments.

    A frame is a row-major image of unsigned pixel values; 8-bit
    greyscale and 24-bit RGB both fit (a pixel is just an int checked
    against the frame's bit depth). *)

type t

val create : width:int -> height:int -> depth:int -> t
(** Zero-filled frame; [depth] is bits per pixel (1–30). *)

val width : t -> int
val height : t -> int
val depth : t -> int
val pixels : t -> int
(** [width * height]. *)

val get : t -> x:int -> y:int -> int
val set : t -> x:int -> y:int -> int -> unit
(** Raises [Invalid_argument] if the value exceeds the bit depth or the
    coordinates are out of range. *)

val init : width:int -> height:int -> depth:int -> (x:int -> y:int -> int) -> t

val to_row_major : t -> int list
(** Pixels in stream order (the order a video decoder emits them). *)

val of_row_major : width:int -> height:int -> depth:int -> int list -> t
(** Raises if the list length is not [width * height]. *)

val equal : t -> t -> bool

val map : t -> f:(int -> int) -> t

val diff_count : t -> t -> int
(** Number of differing pixels (frames must have equal dimensions). *)

val rgb : r:int -> g:int -> b:int -> int
(** Pack 8-bit channels into a 24-bit pixel (r in the high byte). *)

val rgb_channels : int -> int * int * int

val grey_of_rgb : int -> int
(** Integer luma approximation: [(r + 2g + b) / 4]. *)

val to_string : t -> string
(** Compact ASCII rendering for debugging (greyscale ramp). *)
