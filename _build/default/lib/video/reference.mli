(** Software golden models for every hardware algorithm. The RTL
    implementations must match these bit-exactly. *)

val copy : Frame.t -> Frame.t

val transform : f:(int -> int) -> Frame.t -> Frame.t

val blur : Frame.t -> Frame.t
(** 3×3 binomial blur (see {!Hwpat_algorithms.Blur.kernel}); output is
    the (W-2)×(H-2) interior. *)

val sobel : Frame.t -> Frame.t
(** Sobel gradient magnitude (|Gx| + |Gy|, saturated); interior only.
    Matches {!Hwpat_algorithms.Sobel.reference_pixel}. *)

val accumulate : Frame.t -> int
(** Sum of all pixels. *)

val find : target:int -> Frame.t -> int option
(** Stream-order index of the first pixel equal to [target]. *)
