type t = { width : int; height : int; depth : int; data : int array }

let create ~width ~height ~depth =
  if width < 1 || height < 1 then invalid_arg "Frame.create: empty frame";
  if depth < 1 || depth > 30 then invalid_arg "Frame.create: depth out of range";
  { width; height; depth; data = Array.make (width * height) 0 }

let width t = t.width
let height t = t.height
let depth t = t.depth
let pixels t = t.width * t.height

let check_coords t ~x ~y =
  if x < 0 || x >= t.width || y < 0 || y >= t.height then
    invalid_arg (Printf.sprintf "Frame: (%d,%d) outside %dx%d" x y t.width t.height)

let get t ~x ~y =
  check_coords t ~x ~y;
  t.data.((y * t.width) + x)

let set t ~x ~y v =
  check_coords t ~x ~y;
  if v < 0 || v >= 1 lsl t.depth then
    invalid_arg (Printf.sprintf "Frame.set: %d exceeds %d-bit depth" v t.depth);
  t.data.((y * t.width) + x) <- v

let init ~width ~height ~depth f =
  let t = create ~width ~height ~depth in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      set t ~x ~y (f ~x ~y)
    done
  done;
  t

let to_row_major t = Array.to_list t.data

let of_row_major ~width ~height ~depth values =
  if List.length values <> width * height then
    invalid_arg "Frame.of_row_major: wrong pixel count";
  let t = create ~width ~height ~depth in
  List.iteri (fun i v -> t.data.(i) <- v) values;
  t

let equal a b =
  a.width = b.width && a.height = b.height && a.depth = b.depth && a.data = b.data

let map t ~f =
  {
    t with
    data =
      Array.map
        (fun v ->
          let r = f v in
          if r < 0 || r >= 1 lsl t.depth then
            invalid_arg "Frame.map: result exceeds depth";
          r)
        t.data;
  }

let diff_count a b =
  if a.width <> b.width || a.height <> b.height then
    invalid_arg "Frame.diff_count: dimension mismatch";
  let n = ref 0 in
  Array.iteri (fun i v -> if v <> b.data.(i) then incr n) a.data;
  !n

let rgb ~r ~g ~b =
  if r < 0 || r > 255 || g < 0 || g > 255 || b < 0 || b > 255 then
    invalid_arg "Frame.rgb: channel out of range";
  (r lsl 16) lor (g lsl 8) lor b

let rgb_channels px = ((px lsr 16) land 255, (px lsr 8) land 255, px land 255)

let grey_of_rgb px =
  let r, g, b = rgb_channels px in
  (r + (2 * g) + b) / 4

let to_string t =
  let ramp = " .:-=+*#%@" in
  let buf = Buffer.create ((t.width + 1) * t.height) in
  for y = 0 to t.height - 1 do
    for x = 0 to t.width - 1 do
      let v = get t ~x ~y in
      let v = if t.depth > 8 then grey_of_rgb v else v in
      let max_v = (1 lsl min t.depth 8) - 1 in
      let idx = v * (String.length ramp - 1) / max_v in
      Buffer.add_char buf ramp.[idx]
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
