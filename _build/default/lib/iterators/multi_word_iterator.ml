open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers

let words ~elem_width ~bus_width =
  if bus_width < 1 || elem_width < 1 || elem_width mod bus_width <> 0 then
    invalid_arg "Multi_word_iterator: elem_width must be a multiple of bus_width";
  elem_width / bus_width

let st_idle = 0
let st_transfer = 1
let st_done = 2

(* Shared word-sequencer: requests [k] container accesses and pulses
   done_ after the last ack. Returns (container_req, word_ack, done_). *)
let sequencer ~name ~k ~start ~ack =
  let fsm = Fsm.create ~name:(name ^ "_state") ~states:3 () in
  let in_transfer = Fsm.is fsm st_transfer in
  let word_ack = in_transfer &: ack in
  let wbits = Util.bits_to_represent k in
  let word_cnt =
    Hwpat_devices.Handshake.pulse_counter ~width:wbits ~enable:word_ack
      ~clear:(Fsm.is fsm st_idle)
    -- (name ^ "_word")
  in
  let last_word = word_cnt ==: of_int ~width:wbits (k - 1) in
  Fsm.transitions fsm
    [
      (st_idle, [ (start, st_transfer) ]);
      (st_transfer, [ (ack &: last_word, st_done) ]);
      (st_done, [ (vdd, st_idle) ]);
    ];
  (in_transfer, word_ack, Fsm.is fsm st_done)

let input ?(name = "mwit") ~elem_width ~bus_width ~build
    (d : Iterator_intf.driver) =
  let k = words ~elem_width ~bus_width in
  let container_ack = wire 1 in
  let start = d.read_req &: d.inc_req in
  let get_req, word_ack, done_ = sequencer ~name ~k ~start ~ack:container_ack in
  let container, extra = build ~get_req in
  container_ack <== container.Container_intf.get_ack;
  (* Shift each arriving word into the high end; after k words the
     first word has reached the least significant position. *)
  let assembled =
    reg_fb ~width:elem_width (fun q ->
        mux2 word_ack
          (if k = 1 then container.Container_intf.get_data
           else
             concat_msb
               [
                 container.Container_intf.get_data;
                 select q ~high:(elem_width - 1) ~low:bus_width;
               ])
          q)
    -- (name ^ "_elem")
  in
  ( {
      Iterator_intf.inc_ack = done_;
      dec_ack = Iterator_intf.unsupported;
      read_ack = done_;
      read_data = assembled;
      write_ack = Iterator_intf.unsupported;
      index_ack = Iterator_intf.unsupported;
      at_end = container.Container_intf.empty;
    },
    extra )

let output ?(name = "mwot") ~elem_width ~bus_width ~build
    (d : Iterator_intf.driver) =
  let k = words ~elem_width ~bus_width in
  let container_ack = wire 1 in
  let start = d.write_req &: d.inc_req in
  let put_req, word_ack, done_ = sequencer ~name ~k ~start ~ack:container_ack in
  (* Latch the element on start; shift right after each put so the low
     word is always presented. *)
  let shreg =
    reg_fb ~width:elem_width (fun q ->
        mux2
          (start &: ~:put_req) (* idle-cycle capture *)
          d.write_data
          (mux2 word_ack
             (if k = 1 then q
              else
                concat_msb
                  [ zero bus_width; select q ~high:(elem_width - 1) ~low:bus_width ])
             q))
    -- (name ^ "_elem")
  in
  let container, extra =
    build ~put_req ~put_data:(select shreg ~high:(bus_width - 1) ~low:0)
  in
  container_ack <== container.Container_intf.put_ack;
  ( {
      Iterator_intf.inc_ack = done_;
      dec_ack = Iterator_intf.unsupported;
      read_ack = Iterator_intf.unsupported;
      read_data = zero elem_width;
      write_ack = done_;
      index_ack = Iterator_intf.unsupported;
      at_end = container.Container_intf.full;
    },
    extra )
