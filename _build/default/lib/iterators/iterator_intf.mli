open Hwpat_rtl

(** The hardware Iterator interface (Table 2).

    Every iterator presents the same operation set — [inc], [dec],
    [read], [write], [index] — with the request/ack handshake of
    {!Hwpat_containers.Container_intf}. Operations an iterator does not
    support never acknowledge (their ack is tied low), so misuse stalls
    visibly rather than corrupting data.

    Algorithms drive iterators and nothing else; that is the decoupling
    the pattern buys. Sequential (stream) iterators expect [read] and
    [inc] (or [write] and [inc]) to be requested together, the fused
    access the paper's copy algorithm performs. *)

type t = {
  inc_ack : Signal.t;
  dec_ack : Signal.t;
  read_ack : Signal.t;
  read_data : Signal.t;
  write_ack : Signal.t;
  index_ack : Signal.t;
  at_end : Signal.t;    (** no further element is available (source
                            exhausted / sink full) — advisory *)
}

type driver = {
  inc_req : Signal.t;
  dec_req : Signal.t;
  read_req : Signal.t;
  write_req : Signal.t;
  write_data : Signal.t;
  index_req : Signal.t;
  index_pos : Signal.t;
}

val driver_stub : data_width:int -> pos_width:int -> driver
(** All requests low; useful as a base to override. *)

val unsupported : Signal.t
(** Tied-low ack for unimplemented operations. *)
