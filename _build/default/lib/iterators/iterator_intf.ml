open Hwpat_rtl
open Hwpat_rtl.Signal

type t = {
  inc_ack : Signal.t;
  dec_ack : Signal.t;
  read_ack : Signal.t;
  read_data : Signal.t;
  write_ack : Signal.t;
  index_ack : Signal.t;
  at_end : Signal.t;
}

type driver = {
  inc_req : Signal.t;
  dec_req : Signal.t;
  read_req : Signal.t;
  write_req : Signal.t;
  write_data : Signal.t;
  index_req : Signal.t;
  index_pos : Signal.t;
}

let driver_stub ~data_width ~pos_width =
  {
    inc_req = gnd;
    dec_req = gnd;
    read_req = gnd;
    write_req = gnd;
    write_data = zero data_width;
    index_req = gnd;
    index_pos = zero pos_width;
  }

let unsupported = gnd
