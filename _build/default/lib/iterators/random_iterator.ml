open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers

type t = { iterator : Iterator_intf.t; position : Signal.t }

(* One-cycle pulsed ack for a held request (the client deasserts the
   cycle after seeing the ack). *)
let pulse_ack req = reg_fb ~width:1 (fun q -> req &: ~:q)

let create ?(name = "rit") ~length ~vector (d : Iterator_intf.driver) =
  let pos_bits = Util.bits_to_represent length in
  let inc_ack = pulse_ack d.inc_req -- (name ^ "_inc_ack") in
  let dec_ack = pulse_ack d.dec_req -- (name ^ "_dec_ack") in
  let index_ack = pulse_ack d.index_req -- (name ^ "_index_ack") in
  let position =
    reg_fb ~width:pos_bits (fun q ->
        mux2
          (d.index_req &: index_ack)
          (uresize d.index_pos pos_bits)
          (mux2
             (d.inc_req &: inc_ack)
             (q +: one pos_bits)
             (mux2 (d.dec_req &: dec_ack) (q -: one pos_bits) q)))
    -- (name ^ "_pos")
  in
  let addr = select position ~high:(Util.address_bits length - 1) ~low:0 in
  let v =
    vector
      {
        Container_intf.read_req = d.read_req;
        write_req = d.write_req;
        addr;
        write_data = d.write_data;
      }
  in
  {
    iterator =
      {
        Iterator_intf.inc_ack;
        dec_ack;
        read_ack = v.Container_intf.read_ack;
        read_data = v.Container_intf.read_data;
        write_ack = v.Container_intf.write_ack;
        index_ack;
        at_end = position >=: of_int ~width:pos_bits length;
      };
    position;
  }
