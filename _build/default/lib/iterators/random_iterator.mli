open Hwpat_rtl

(** Random iterator over a vector container.

    Unlike the stream wrappers, a random iterator has real state: the
    position register tracking the traversal (the [ConcreteIterator]
    of the pattern). It supports the full Table 2 set: [inc]/[dec]
    move the position (single-cycle ack), [index] loads it, [read] and
    [write] access the vector at the current position.

    Request one operation at a time: the position feeds the vector's
    address combinationally, so moving the position while a read or
    write is in flight on a multi-cycle target would change the address
    mid-access. Every algorithm in [hwpat.algorithms] serialises its
    iterator operations, which is the natural FSM structure anyway. *)

type t = {
  iterator : Iterator_intf.t;
  position : Signal.t;  (** current traversal position *)
}

val create :
  ?name:string ->
  length:int ->
  vector:(Hwpat_containers.Container_intf.random_driver ->
          Hwpat_containers.Container_intf.random) ->
  Iterator_intf.driver ->
  t
(** [vector] is a partially-applied {!Hwpat_containers.Vector_c}
    builder; the iterator supplies its position as the address.
    [at_end] is high when the position has walked past [length - 1]. *)
