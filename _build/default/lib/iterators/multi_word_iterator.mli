open Hwpat_rtl
open Hwpat_containers

(** Width-adapting iterators (§3.3, alternative 2).

    When the element type is wider than the physical data bus — the
    paper's 24-bit RGB pixel over an 8-bit memory — "the iterator code
    performs three consecutive container reads/writes to get/set the
    whole pixel". These iterators contain that word-sequencing FSM and
    assembly register; the algorithm above them still sees whole
    elements and is not modified.

    Word order: the first word transferred is the least significant
    part of the element. *)

val words : elem_width:int -> bus_width:int -> int
(** Transfers per element; [elem_width] must be a positive multiple of
    [bus_width]. *)

val input :
  ?name:string ->
  elem_width:int ->
  bus_width:int ->
  build:(get_req:Signal.t -> Container_intf.seq * 'a) ->
  Iterator_intf.driver ->
  Iterator_intf.t * 'a
(** Forward input iterator: a fused [read]+[inc] performs [words]
    container gets and acks once with the assembled element. [build]
    constructs the narrow container given the iterator's internal get
    request (mirroring {!Seq_iterator.connect_input}). *)

val output :
  ?name:string ->
  elem_width:int ->
  bus_width:int ->
  build:(put_req:Signal.t -> put_data:Signal.t -> Container_intf.seq * 'a) ->
  Iterator_intf.driver ->
  Iterator_intf.t * 'a
(** Forward output iterator: a fused [write]+[inc] splits the element
    into [words] container puts and acks when the last one lands. *)
