open Hwpat_rtl.Signal
open Hwpat_containers

let fused_get_req (d : Iterator_intf.driver) = d.read_req &: d.inc_req
let fused_put_req (d : Iterator_intf.driver) = d.write_req &: d.inc_req

let input (c : Container_intf.seq) (_d : Iterator_intf.driver) =
  {
    Iterator_intf.inc_ack = c.get_ack;
    dec_ack = Iterator_intf.unsupported;
    read_ack = c.get_ack;
    read_data = c.get_data;
    write_ack = Iterator_intf.unsupported;
    index_ack = Iterator_intf.unsupported;
    at_end = c.empty;
  }

let connect_input ~build (d : Iterator_intf.driver) =
  let container, extra = build ~get_req:(fused_get_req d) in
  (input container d, extra)

let output (c : Container_intf.seq) (_d : Iterator_intf.driver) =
  {
    Iterator_intf.inc_ack = c.put_ack;
    dec_ack = Iterator_intf.unsupported;
    read_ack = Iterator_intf.unsupported;
    read_data = c.get_data;
    write_ack = c.put_ack;
    index_ack = Iterator_intf.unsupported;
    at_end = c.full;
  }
