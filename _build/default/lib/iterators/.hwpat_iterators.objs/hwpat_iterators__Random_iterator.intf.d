lib/iterators/random_iterator.mli: Hwpat_containers Hwpat_rtl Iterator_intf Signal
