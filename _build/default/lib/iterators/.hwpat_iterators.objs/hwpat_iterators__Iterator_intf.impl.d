lib/iterators/iterator_intf.ml: Hwpat_rtl Signal
