lib/iterators/multi_word_iterator.ml: Container_intf Fsm Hwpat_containers Hwpat_devices Hwpat_rtl Iterator_intf Util
