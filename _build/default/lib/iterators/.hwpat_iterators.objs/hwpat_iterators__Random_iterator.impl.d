lib/iterators/random_iterator.ml: Container_intf Hwpat_containers Hwpat_rtl Iterator_intf Signal Util
