lib/iterators/seq_iterator.mli: Hwpat_containers Hwpat_rtl Iterator_intf Signal
