lib/iterators/iterator_intf.mli: Hwpat_rtl Signal
