open Hwpat_rtl

(** Iterators over sequential containers.

    These are the wrappers the paper describes: "no more than a wrapper
    that renames some signals and provides the common interface". They
    add no state — the container tracks the traversal — so they
    dissolve entirely at synthesis (zero LUTs, zero FFs).

    Sequential access is fused: the algorithm asserts [read]+[inc]
    (input side) or [write]+[inc] (output side) together, and both
    acks pulse when the underlying container completes the access. *)

val input :
  Hwpat_containers.Container_intf.seq -> Iterator_intf.driver ->
  Iterator_intf.t
(** Forward input iterator: [read]+[inc] pops the container's next
    element. [at_end] mirrors the container's [empty]. The returned
    iterator's get requests are wired into the container through the
    driver's [read_req]/[inc_req]; the container must have been built
    with [get_req = read_req &: inc_req] — use {!connect_input}. *)

val connect_input :
  build:(get_req:Signal.t -> Hwpat_containers.Container_intf.seq * 'a) ->
  Iterator_intf.driver -> Iterator_intf.t * 'a
(** Builds the container and iterator together, wiring the fused
    [read]+[inc] request into the container's get port. ['a] carries
    any extra container outputs (e.g. a read buffer's [px_ready]). *)

val output :
  Hwpat_containers.Container_intf.seq -> Iterator_intf.driver ->
  Iterator_intf.t
(** Forward output iterator over a container whose put side was built
    with [put_req = write_req &: inc_req] and [put_data = write_data].
    [at_end] mirrors [full]. *)

val fused_get_req : Iterator_intf.driver -> Signal.t
(** [read_req &: inc_req] — the container-side get request. *)

val fused_put_req : Iterator_intf.driver -> Signal.t
(** [write_req &: inc_req]. *)
