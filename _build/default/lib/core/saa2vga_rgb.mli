open Hwpat_rtl

(** The §3.3 pixel-format scenario as a complete video system: the
    camera now delivers 24-bit RGB pixels, but the physical memory bus
    stays 8 bits wide.

    The model is the same read-buffer → copy → write-buffer pipeline as
    {!Saa2vga}; regeneration handles the width change in one of the two
    ways the paper describes, selected by [bus]:

    - [`Wide] — a 24-bit data bus: containers and iterators are simply
      regenerated with the RGB pixel as the base type;
    - [`Narrow] — an 8-bit data bus: containers stay byte-wide and the
      regenerated multi-word iterators perform "three consecutive
      container reads/writes to get/set the whole pixel".

    Ports are the standard video set with 24-bit pixel data. The copy
    algorithm instance is identical in both configurations. *)

val build : ?depth:int -> bus:[ `Wide | `Narrow ] -> unit -> Circuit.t
(** [depth] is in *pixels*, and must be a power of two (the narrow
    configuration rounds its byte containers up to [4 × depth] to stay
    a power of two); default 64. *)
