type participant = { role : string; description : string; implemented_by : string }

type t = {
  name : string;
  classification : string;
  intent : string;
  participants : participant list;
  hardware_notes : string list;
}

let iterator =
  {
    name = "Iterator";
    classification = "behavioural";
    intent =
      "Provide a way to access the elements of an aggregate object \
       (container) sequentially without exposing its underlying \
       representation.";
    participants =
      [
        {
          role = "Iterator";
          description =
            "defines the interface for accessing and traversing elements: \
             inc, dec, read, write, index (Table 2)";
          implemented_by = "Hwpat_iterators.Iterator_intf";
        };
        {
          role = "ConcreteIterator";
          description =
            "implements the Iterator interface and keeps track of the \
             current position in the traversal; instantiated at design \
             time (hardware is static)";
          implemented_by =
            "Hwpat_iterators.{Seq_iterator,Random_iterator,Multi_word_iterator}";
        };
        {
          role = "Aggregate";
          description =
            "the abstract container; exists only in the model domain";
          implemented_by = "Hwpat_meta.Metamodel / Hwpat_model.Container";
        };
        {
          role = "ConcreteAggregate";
          description =
            "a container generated for a physical target (FIFO core, \
             LIFO core, block RAM, external SRAM, 3-line buffer)";
          implemented_by =
            "Hwpat_containers.{Queue_c,Stack_c,Read_buffer,Write_buffer,\
             Vector_c,Assoc_array}";
        };
      ];
    hardware_notes =
      [
        "The Aggregate is not responsible for creating Iterator objects: \
         iterators must be instantiated at design time.";
        "Sequential iterators are pure wrappers (signal renamings) and \
         dissolve at synthesis: zero area cost.";
        "Operation ports are pruned: only the operations an algorithm \
         uses are generated.";
        "Width adaptation (element wider than the physical bus) lives in \
         the iterator, invisible to the algorithm.";
      ];
  }

let structural_note name intent =
  {
    name;
    classification = "structural";
    intent;
    participants = [];
    hardware_notes =
      [ "Covered by prior work (Damasevicius et al., Yoshida); included \
         for catalog completeness, not implemented here." ];
  }

let catalog =
  [
    iterator;
    structural_note "Adapter"
      "Convert the interface of a component into the interface clients \
       expect (bus wrappers, protocol converters).";
    structural_note "Facade"
      "Provide a unified interface to a set of interfaces in a subsystem \
       (IP integration shells).";
    structural_note "Composite"
      "Compose components into tree structures (hierarchical netlists).";
  ]

let describe t =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "%s (%s)\n" t.name t.classification);
  Buffer.add_string b (Printf.sprintf "Intent: %s\n" t.intent);
  if t.participants <> [] then begin
    Buffer.add_string b "Participants:\n";
    List.iter
      (fun p ->
        Buffer.add_string b
          (Printf.sprintf "  %-18s %s\n  %-18s -> %s\n" p.role p.description ""
             p.implemented_by))
      t.participants
  end;
  if t.hardware_notes <> [] then begin
    Buffer.add_string b "Hardware notes:\n";
    List.iter
      (fun n -> Buffer.add_string b (Printf.sprintf "  - %s\n" n))
      t.hardware_notes
  end;
  Buffer.contents b
