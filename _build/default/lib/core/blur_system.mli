open Hwpat_rtl

(** The paper's third experiment: a 3×3 blur filter between the video
    decoder and the VGA coder, with the input buffer mapped over the
    specialised 3-line buffer so one filtered pixel can be produced per
    column access.

    [Pattern] composes the column read-buffer container, its iterator
    and the generic blur algorithm; [Custom] is a hand-fused streaming
    implementation directly on the line-buffer device and output FIFO.

    Ports are identical to {!Saa2vga}: for a W×H input stream, the
    output stream is the (W-2)×(H-2) interior. *)

type style = Pattern | Custom

val build :
  ?width:int -> ?out_depth:int -> image_width:int -> max_rows:int ->
  style:style -> unit -> Circuit.t
(** Defaults: [width = 8] (pixel bits), [out_depth = 16] (output FIFO
    words). *)

val name : style:style -> string
