lib/core/saa2vga_rgb.mli: Circuit Hwpat_rtl
