lib/core/experiment.mli: Circuit Frame Hwpat_rtl Hwpat_synthesis Hwpat_video
