lib/core/sobel_system.mli: Circuit Hwpat_rtl
