lib/core/blur_system.ml: Blur Circuit Fifo_core Hwpat_algorithms Hwpat_containers Hwpat_devices Hwpat_iterators Hwpat_rtl Iterator_intf Line_buffer Printf Read_buffer Seq_iterator Util Write_buffer
