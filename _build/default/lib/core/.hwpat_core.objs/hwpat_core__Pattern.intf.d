lib/core/pattern.mli:
