lib/core/blur_system.mli: Circuit Hwpat_rtl
