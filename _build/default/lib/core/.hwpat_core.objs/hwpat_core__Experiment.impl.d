lib/core/experiment.ml: Blur_system Buffer Circuit Cyclesim Frame Hwpat_rtl Hwpat_synthesis Hwpat_video List Option Pattern Printf Reference Saa2vga String Vcd Vga_sink Video_source
