lib/core/saa2vga.mli: Circuit Hwpat_rtl
