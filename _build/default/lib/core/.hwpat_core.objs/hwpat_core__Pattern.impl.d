lib/core/pattern.ml: Buffer List Printf
