lib/core/characterize.mli: Hwpat_synthesis
