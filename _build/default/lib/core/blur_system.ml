open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_iterators
open Hwpat_algorithms

type style = Pattern | Custom

let name ~style =
  Printf.sprintf "blur_%s" (match style with Pattern -> "pattern" | Custom -> "custom")

let io width =
  (input "px_valid" 1, input "px_data" width, input "out_ready" 1)

let close ~circuit_name ~px_ready ~out_valid ~out_data =
  Circuit.create_exn ~name:circuit_name
    [ ("px_ready", px_ready); ("out_valid", out_valid); ("out_data", out_data) ]

let build_pattern ~width ~out_depth ~image_width ~max_rows =
  let px_valid, px_data, out_ready = io width in
  let stream = { Read_buffer.px_valid; px_data } in
  let blur = Blur.create ~width ~image_width () in
  let col_it, px_ready =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let rb =
          Read_buffer.over_line_buffer ~image_width ~max_rows ~width ~stream
            ~get_req ()
        in
        (rb.Read_buffer.col_seq, rb.Read_buffer.col_px_ready))
      blur.Blur.col_driver
  in
  let put_req = Seq_iterator.fused_put_req blur.Blur.dst_driver in
  let put_data = blur.Blur.dst_driver.Iterator_intf.write_data in
  let wb =
    Write_buffer.over_fifo ~depth:out_depth ~width ~out_ready ~put_req ~put_data ()
  in
  let dst_it = Seq_iterator.output wb.Write_buffer.seq blur.Blur.dst_driver in
  blur.Blur.connect ~col:col_it ~dst:dst_it;
  close
    ~circuit_name:(name ~style:Pattern)
    ~px_ready
    ~out_valid:wb.Write_buffer.stream.Write_buffer.out_valid
    ~out_data:wb.Write_buffer.stream.Write_buffer.out_data

(* Hand-fused streaming blur: take a pixel whenever the output FIFO has
   room, shift the window, and push one filtered pixel per interior
   column — the "ideally a new filtered pixel per clock cycle" design
   the paper describes. *)
let build_custom ~width ~out_depth ~image_width ~max_rows =
  let px_valid, px_data, out_ready = io width in
  let open Hwpat_devices in
  let out_full = wire 1 in
  let px_en = px_valid &: ~:out_full in
  let lb =
    Line_buffer.create ~name:"lb" ~image_width ~max_rows ~width ~px_en ~px_data ()
  in
  let open Line_buffer in
  let got = lb.col_valid in
  (* Current column straight from the device; two registered columns. *)
  let c0 = concat_msb [ lb.top; lb.mid; lb.bot ] in
  let c1 = reg ~enable:got c0 -- "c1" in
  let c2 = reg ~enable:got c1 -- "c2" in
  let xbits = Util.address_bits image_width in
  let x =
    reg_fb ~width:xbits (fun q ->
        mux2 got
          (mux2 (q ==: of_int ~width:xbits (image_width - 1)) (zero xbits)
             (q +: one xbits))
          q)
    -- "x"
  in
  let window_full = x >=: of_int ~width:xbits 2 in
  let sw = width + 4 in
  let part c = select c ~high:((3 * width) - 1) ~low:(2 * width) in
  let mid c = select c ~high:((2 * width) - 1) ~low:width in
  let bot c = select c ~high:(width - 1) ~low:0 in
  let w1 s = uresize s sw in
  let w2 s = sll (uresize s sw) 1 in
  let w4 s = sll (uresize s sw) 2 in
  (* Balanced adder tree: log depth instead of a serial chain. *)
  let rec tree_sum = function
    | [] -> assert false
    | [ x ] -> x
    | x :: y :: rest -> tree_sum (rest @ [ x +: y ])
  in
  let sum =
    tree_sum
      [
        w1 (part c2); w2 (mid c2); w1 (bot c2);
        w2 (part c1); w4 (mid c1); w2 (bot c1);
        w1 (part c0); w2 (mid c0); w1 (bot c0);
      ]
  in
  let out_px = select sum ~high:(sw - 1) ~low:4 in
  let produce = got &: lb.warm &: window_full in
  let drain_rd_en = wire 1 in
  let out_fifo =
    Fifo_core.create ~name:"outfifo" ~depth:out_depth ~width ~wr_en:produce
      ~wr_data:out_px ~rd_en:drain_rd_en ()
  in
  (* Almost-full gating: a produced pixel trails its accepted input by
     one cycle, so stall intake while fewer than two slots remain or the
     in-flight column could be dropped by a just-filled FIFO. *)
  let cbits = Util.address_bits out_depth + 1 in
  out_full
  <== (out_fifo.Fifo_core.count >=: of_int ~width:cbits (out_depth - 2));
  let pending =
    reg_fb ~width:1 (fun q ->
        mux2 drain_rd_en vdd (mux2 out_fifo.Fifo_core.rd_valid gnd q))
  in
  drain_rd_en
  <== (out_ready &: ~:(out_fifo.Fifo_core.empty) &: ~:pending
      &: ~:(out_fifo.Fifo_core.rd_valid));
  close
    ~circuit_name:(name ~style:Custom)
    ~px_ready:px_en ~out_valid:out_fifo.Fifo_core.rd_valid
    ~out_data:out_fifo.Fifo_core.rd_data

let build ?(width = 8) ?(out_depth = 16) ~image_width ~max_rows ~style () =
  match style with
  | Pattern -> build_pattern ~width ~out_depth ~image_width ~max_rows
  | Custom -> build_custom ~width ~out_depth ~image_width ~max_rows
