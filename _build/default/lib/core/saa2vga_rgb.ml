open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_iterators
open Hwpat_algorithms

let pixel_bits = 24
let bus_bits = 8

let io () =
  ( input "px_valid" 1,
    input "px_data" pixel_bits,
    input "out_ready" 1 )

let close ~circuit_name ~px_ready ~out_valid ~out_data =
  Circuit.create_exn ~name:circuit_name
    [ ("px_ready", px_ready); ("out_valid", out_valid); ("out_data", out_data) ]

(* 24-bit bus: everything regenerated at the pixel width; structurally
   identical to the greyscale pipeline. *)
let build_wide ~depth =
  let px_valid, px_data, out_ready = io () in
  let stream = { Read_buffer.px_valid; px_data } in
  let copy = Copy.create ~width:pixel_bits () in
  let src_it, px_ready =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let rb =
          Read_buffer.over_fifo ~depth ~width:pixel_bits ~stream ~get_req ()
        in
        (rb.Read_buffer.seq, rb.Read_buffer.px_ready))
      copy.Transform.src_driver
  in
  let wb =
    Write_buffer.over_fifo ~depth ~width:pixel_bits ~out_ready
      ~put_req:(Seq_iterator.fused_put_req copy.Transform.dst_driver)
      ~put_data:copy.Transform.dst_driver.Iterator_intf.write_data ()
  in
  let dst_it = Seq_iterator.output wb.Write_buffer.seq copy.Transform.dst_driver in
  copy.Transform.connect ~src:src_it ~dst:dst_it;
  close ~circuit_name:"saa2vga_rgb_wide" ~px_ready
    ~out_valid:wb.Write_buffer.stream.Write_buffer.out_valid
    ~out_data:wb.Write_buffer.stream.Write_buffer.out_data

(* 8-bit bus: byte-wide containers; four regenerated multi-word
   iterators carry whole pixels across them. The decoder stream drives
   a multi-word output iterator directly (its valid is the fused
   write+inc request, the iterator's ack is the stream ready), and the
   VGA side symmetrically drives a multi-word input iterator. *)
let build_narrow ~depth =
  let px_valid, px_data, out_ready = io () in
  let byte_depth = 4 * depth in
  (* Source byte queue: filled by the deserialising iterator, drained
     by the copy's input iterator. *)
  let src_get = wire 1 and src_put = wire 1 and src_put_data = wire bus_bits in
  let src_q =
    Queue_c.over_fifo ~name:"src_bytes" ~depth:byte_depth ~width:bus_bits
      { Container_intf.get_req = src_get; put_req = src_put; put_data = src_put_data }
  in
  let dst_get = wire 1 and dst_put = wire 1 and dst_put_data = wire bus_bits in
  let dst_q =
    Queue_c.over_fifo ~name:"dst_bytes" ~depth:byte_depth ~width:bus_bits
      { Container_intf.get_req = dst_get; put_req = dst_put; put_data = dst_put_data }
  in
  (* Stream-side serialiser: the video stream is the algorithm here. *)
  let in_split_it, () =
    Multi_word_iterator.output ~name:"px_split" ~elem_width:pixel_bits
      ~bus_width:bus_bits
      ~build:(fun ~put_req ~put_data ->
        src_put <== put_req;
        src_put_data <== put_data;
        (src_q, ()))
      {
        (Iterator_intf.driver_stub ~data_width:pixel_bits ~pos_width:1) with
        Iterator_intf.write_req = px_valid;
        inc_req = px_valid;
        write_data = px_data;
      }
  in
  let px_ready = in_split_it.Iterator_intf.write_ack in
  (* The copy algorithm, at pixel width, over multi-word iterators. *)
  let copy = Copy.create ~width:pixel_bits () in
  let src_it, () =
    Multi_word_iterator.input ~name:"px_in" ~elem_width:pixel_bits
      ~bus_width:bus_bits
      ~build:(fun ~get_req ->
        src_get <== get_req;
        (src_q, ()))
      copy.Transform.src_driver
  in
  let dst_it, () =
    Multi_word_iterator.output ~name:"px_out" ~elem_width:pixel_bits
      ~bus_width:bus_bits
      ~build:(fun ~put_req ~put_data ->
        dst_put <== put_req;
        dst_put_data <== put_data;
        (dst_q, ()))
      copy.Transform.dst_driver
  in
  copy.Transform.connect ~src:src_it ~dst:dst_it;
  (* VGA-side assembler. *)
  let out_it, () =
    Multi_word_iterator.input ~name:"px_join" ~elem_width:pixel_bits
      ~bus_width:bus_bits
      ~build:(fun ~get_req ->
        dst_get <== get_req;
        (dst_q, ()))
      {
        (Iterator_intf.driver_stub ~data_width:pixel_bits ~pos_width:1) with
        Iterator_intf.read_req = out_ready;
        inc_req = out_ready;
      }
  in
  close ~circuit_name:"saa2vga_rgb_narrow" ~px_ready
    ~out_valid:out_it.Iterator_intf.read_ack
    ~out_data:out_it.Iterator_intf.read_data

let build ?(depth = 64) ~bus () =
  match bus with `Wide -> build_wide ~depth | `Narrow -> build_narrow ~depth
