open Hwpat_rtl
open Hwpat_rtl.Signal
open Hwpat_containers
open Hwpat_iterators
open Hwpat_algorithms

let build ?(width = 8) ?(out_depth = 16) ~image_width ~max_rows () =
  let px_valid = input "px_valid" 1 in
  let px_data = input "px_data" width in
  let out_ready = input "out_ready" 1 in
  let stream = { Read_buffer.px_valid; px_data } in
  let sobel = Sobel.create ~width ~image_width () in
  let col_it, px_ready =
    Seq_iterator.connect_input
      ~build:(fun ~get_req ->
        let rb =
          Read_buffer.over_line_buffer ~image_width ~max_rows ~width ~stream
            ~get_req ()
        in
        (rb.Read_buffer.col_seq, rb.Read_buffer.col_px_ready))
      sobel.Sobel.col_driver
  in
  let wb =
    Write_buffer.over_fifo ~depth:out_depth ~width ~out_ready
      ~put_req:(Seq_iterator.fused_put_req sobel.Sobel.dst_driver)
      ~put_data:sobel.Sobel.dst_driver.Iterator_intf.write_data ()
  in
  let dst_it = Seq_iterator.output wb.Write_buffer.seq sobel.Sobel.dst_driver in
  sobel.Sobel.connect ~col:col_it ~dst:dst_it;
  Circuit.create_exn ~name:"sobel_pattern"
    [
      ("px_ready", px_ready);
      ("out_valid", wb.Write_buffer.stream.Write_buffer.out_valid);
      ("out_data", wb.Write_buffer.stream.Write_buffer.out_data);
    ]
