open Hwpat_rtl

(** Sobel edge-detection pipeline — the same system shape as
    {!Blur_system} with a different algorithm plugged onto the same
    3-line-buffer container, demonstrating algorithm/container reuse.
    Pattern style (the library composition) only; ports are identical
    to the other video systems. *)

val build :
  ?width:int -> ?out_depth:int -> image_width:int -> max_rows:int -> unit ->
  Circuit.t
