(** The hardware design-pattern catalog (the paper's §3 and Figure 2).

    Pattern descriptions in the Gamma et al. format, specialised to
    hardware: intent, participants, hardware-specific consequences, and
    which library modules implement each participant. The benchmark
    harness prints the Iterator entry to regenerate Figure 2's content
    in text form. *)

type participant = { role : string; description : string; implemented_by : string }

type t = {
  name : string;
  classification : string;  (** creational / structural / behavioural *)
  intent : string;
  participants : participant list;
  hardware_notes : string list;
}

val iterator : t
(** The Iterator pattern as adapted in the paper: aggregates become
    containers with physical targets, iterators are generated wrappers
    instantiated at design time. *)

val catalog : t list
(** All catalogued patterns (the paper calls for building this out;
    we include Iterator plus the structural patterns the related work
    covers, marked as such). *)

val describe : t -> string
