(** Design-space characterisation of generated containers (§3.4).

    "Since components are generated automatically, it is feasible to
    generate versions of each one for every physical target and range
    of configuration parameters" — this module does exactly that:
    build each container for each legal target and parameter point,
    estimate area and timing, measure access latency and switching
    activity in simulation, and return {!Hwpat_synthesis.Design_space}
    candidates. *)

type point = {
  container : string;
  target : string;
  elem_width : int;
  depth : int;
  wait_states : int;
}

val default_points : point list
(** Queues and stacks over each legal target, widths 8 and 16, depths
    64 and 512, SRAM at 0–2 wait states. *)

val characterize : point -> Hwpat_synthesis.Design_space.candidate
(** Builds the container, synthesises a measurement harness, runs a
    put/get workload and fills in every candidate field. *)

val sweep : ?points:point list -> unit -> Hwpat_synthesis.Design_space.candidate list

val region_report :
  constraints:Hwpat_synthesis.Design_space.constraints ->
  Hwpat_synthesis.Design_space.candidate list ->
  string
(** Feasible + Pareto table rendering. *)
