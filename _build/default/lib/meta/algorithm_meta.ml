type step = Fetch of string | Apply of string | Store of string

type t = { algorithm_name : string; elem_width : int; body : step list }

let copy ~elem_width =
  {
    algorithm_name = "copy";
    elem_width;
    body = [ Fetch "src"; Store "dst" ];
  }

let transform ~elem_width ~expr =
  {
    algorithm_name = "transform";
    elem_width;
    body = [ Fetch "src"; Apply expr; Store "dst" ];
  }

let iterators t =
  List.filter_map
    (function
      | Fetch n -> Some (n, `Input)
      | Store n -> Some (n, `Output)
      | Apply _ -> None)
    t.body

let validate t =
  if t.body = [] then Error "empty body"
  else if t.elem_width < 1 then Error "element width must be >= 1"
  else begin
    let seen_fetch = ref false in
    let err = ref None in
    List.iter
      (fun step ->
        match step with
        | Fetch _ -> seen_fetch := true
        | Apply _ | Store _ ->
          if not !seen_fetch then err := Some "apply/store before any fetch")
      t.body;
    let names = List.map fst (iterators t) in
    if List.length (List.sort_uniq compare names) <> List.length names then
      err := Some "iterator used in more than one step";
    match !err with Some e -> Error e | None -> Ok ()
  end

let emit buffer fmt = Printf.ksprintf (Buffer.add_string buffer) fmt

let state_name i = Printf.sprintf "st_%d" i

let is_ident_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false

(* The handshaking steps, each paired with the Apply expressions that
   precede it since the last handshake. Applies compose textually over
   the running value. *)
let scheduled t =
  let rec go pending = function
    | [] -> []
    | Apply e :: rest -> go (pending @ [ e ]) rest
    | (Fetch _ as s) :: rest -> (s, pending) :: go [] rest
    | (Store _ as s) :: rest -> (s, pending) :: go [] rest
  in
  go [] t.body

let compose_applies base applies =
  List.fold_left
    (fun acc e ->
      (* Expressions reference the loop value as "data"; substitute the
         running expression for it. *)
      let needle = "data" in
      let buf = Buffer.create (String.length e + String.length acc) in
      let n = String.length e and m = String.length needle in
      let i = ref 0 in
      while !i < n do
        if
          !i + m <= n
          && String.sub e !i m = needle
          && ((!i = 0 || not (is_ident_char e.[!i - 1]))
             && (!i + m = n || not (is_ident_char e.[!i + m])))
        then begin
          Buffer.add_string buf acc;
          i := !i + m
        end
        else begin
          Buffer.add_char buf e.[!i];
          incr i
        end
      done;
      "(" ^ Buffer.contents buf ^ ")")
    base applies

let generate t =
  (match validate t with
  | Ok () -> ()
  | Error e -> invalid_arg ("Algorithm_meta.generate: " ^ e));
  let buf = Buffer.create 4096 in
  let w = t.elem_width in
  emit buf
    "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n";
  emit buf "entity %s is\n  port (\n    clk : in std_logic;\n" t.algorithm_name;
  List.iter
    (fun (name, dir) ->
      match dir with
      | `Input ->
        emit buf "    %s_read : out std_logic;\n" name;
        emit buf "    %s_inc : out std_logic;\n" name;
        emit buf "    %s_ack : in std_logic;\n" name;
        emit buf "    %s_data : in std_logic_vector(%d downto 0);\n" name (w - 1)
      | `Output ->
        emit buf "    %s_write : out std_logic;\n" name;
        emit buf "    %s_inc : out std_logic;\n" name;
        emit buf "    %s_ack : in std_logic;\n" name;
        emit buf "    %s_data : out std_logic_vector(%d downto 0);\n" name (w - 1))
    (iterators t);
  emit buf "    running : out std_logic\n  );\nend %s;\n\n" t.algorithm_name;
  emit buf "architecture generated of %s is\n" t.algorithm_name;
  let steps = scheduled t in
  let n_states = List.length steps in
  emit buf "  type state_t is (%s);\n"
    (String.concat ", " (List.init n_states state_name));
  emit buf "  signal state : state_t := %s;\n" (state_name 0);
  emit buf "  signal data : std_logic_vector(%d downto 0);\n" (w - 1);
  emit buf "begin\n";
  (* Request decode and output data, combinational. *)
  List.iteri
    (fun i (step, applies) ->
      match step with
      | Fetch name ->
        emit buf "  %s_read <= '1' when state = %s else '0';\n" name (state_name i);
        emit buf "  %s_inc <= '1' when state = %s else '0';\n" name (state_name i)
      | Store name ->
        emit buf "  %s_write <= '1' when state = %s else '0';\n" name
          (state_name i);
        emit buf "  %s_inc <= '1' when state = %s else '0';\n" name (state_name i);
        emit buf "  %s_data <= %s;\n" name (compose_applies "data" applies)
      | Apply _ -> assert false)
    steps;
  emit buf "  running <= '1';\n";
  emit buf "\n  process (clk)\n  begin\n    if rising_edge(clk) then\n";
  emit buf "      case state is\n";
  List.iteri
    (fun i (step, _) ->
      let next = state_name (if i + 1 >= n_states then 0 else i + 1) in
      match step with
      | Fetch name ->
        emit buf "        when %s =>\n" (state_name i);
        emit buf "          if %s_ack = '1' then\n" name;
        emit buf "            data <= %s_data;\n" name;
        emit buf "            state <= %s;\n          end if;\n" next
      | Store name ->
        emit buf "        when %s =>\n" (state_name i);
        emit buf "          if %s_ack = '1' then\n" name;
        emit buf "            state <= %s;\n          end if;\n" next
      | Apply _ -> assert false)
    steps;
  emit buf "      end case;\n    end if;\n  end process;\nend generated;\n";
  Buffer.contents buf
