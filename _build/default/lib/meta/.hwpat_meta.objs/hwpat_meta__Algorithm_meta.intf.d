lib/meta/algorithm_meta.mli:
