lib/meta/codegen.mli: Config
