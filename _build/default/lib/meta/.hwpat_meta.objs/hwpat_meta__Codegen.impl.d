lib/meta/codegen.ml: Buffer Config Hwpat_rtl List Metamodel Printf String
