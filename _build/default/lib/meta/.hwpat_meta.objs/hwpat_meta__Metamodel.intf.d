lib/meta/metamodel.mli:
