lib/meta/vhdl_lint.ml: Buffer Format List Printf String
