lib/meta/config.ml: Hwpat_rtl List Metamodel Printf String
