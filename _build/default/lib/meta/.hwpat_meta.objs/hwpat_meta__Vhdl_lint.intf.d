lib/meta/vhdl_lint.mli: Format
