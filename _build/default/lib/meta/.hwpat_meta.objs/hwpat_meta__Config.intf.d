lib/meta/config.mli: Metamodel
