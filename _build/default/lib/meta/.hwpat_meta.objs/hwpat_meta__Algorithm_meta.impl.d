lib/meta/algorithm_meta.ml: Buffer List Printf String
