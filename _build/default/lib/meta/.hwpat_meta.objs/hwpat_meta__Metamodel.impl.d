lib/meta/metamodel.ml: List Printf String
