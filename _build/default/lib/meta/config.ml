type t = {
  instance_name : string;
  kind : Metamodel.container_kind;
  target : Metamodel.target;
  elem_width : int;
  depth : int;
  bus_width : int;
  addr_width : int;
  ops_used : Metamodel.operation list;
  wait_states : int;
}

let make ?bus_width ?addr_width ?ops_used ?(wait_states = 1) ~instance_name ~kind
    ~target ~elem_width ~depth () =
  if elem_width < 1 then invalid_arg "Config.make: elem_width must be >= 1";
  if depth < 1 then invalid_arg "Config.make: depth must be >= 1";
  let bus_width = match bus_width with Some w -> w | None -> elem_width in
  let addr_width =
    match addr_width with
    | Some w -> w
    | None -> Hwpat_rtl.Util.address_bits depth
  in
  if elem_width mod bus_width <> 0 then
    invalid_arg "Config.make: elem_width must be a multiple of bus_width";
  if not (List.mem target (Metamodel.legal_targets kind)) then
    invalid_arg
      (Printf.sprintf "Config.make: %s cannot be implemented over %s"
         (Metamodel.container_name kind)
         (Metamodel.target_name target));
  let supported = Metamodel.operations kind in
  let ops_used = match ops_used with Some ops -> ops | None -> supported in
  List.iter
    (fun op ->
      if not (List.mem op supported) then
        invalid_arg
          (Printf.sprintf "Config.make: %s does not support operation %s"
             (Metamodel.container_name kind)
             (Metamodel.operation_name op)))
    ops_used;
  {
    instance_name;
    kind;
    target;
    elem_width;
    depth;
    bus_width;
    addr_width;
    ops_used;
    wait_states;
  }

let words_per_element t = t.elem_width / t.bus_width

let entity_name t =
  Printf.sprintf "%s_%s" t.instance_name (Metamodel.target_name t.target)

let describe t =
  Printf.sprintf "%s: %s over %s, %d x %d bits (bus %d, ops %s)" t.instance_name
    (Metamodel.container_name t.kind)
    (Metamodel.target_name t.target)
    t.depth t.elem_width t.bus_width
    (String.concat "," (List.map Metamodel.operation_name t.ops_used))
