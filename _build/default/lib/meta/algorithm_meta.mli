(** Algorithm metamodels — the paper's §3.4 future work ("Algorithms
    can also be described through metamodels").

    An algorithm metamodel is a loop body: a sequence of iterator
    operations with data flowing between them, plus an optional
    element-wise expression. The generator emits the VHDL FSM that
    performs the sequence through the standard iterator handshake —
    the same machine [Hwpat_algorithms.Transform] builds at the signal
    level. *)

(** One step of the loop body. *)
type step =
  | Fetch of string
      (** fused read+inc on the named input iterator; the element lands
          in the loop's data register *)
  | Apply of string
      (** a combinational VHDL expression over the data register, e.g.
          ["not data"] or ["data(6 downto 0) & '0'"] *)
  | Store of string
      (** fused write+inc of the data register on the named output
          iterator *)

type t = {
  algorithm_name : string;
  elem_width : int;
  body : step list;  (** executed in order, then repeated forever *)
}

val copy : elem_width:int -> t
(** The paper's copy: [Fetch src; Store dst]. *)

val transform : elem_width:int -> expr:string -> t
(** [Fetch src; Apply expr; Store dst]. *)

val validate : t -> (unit, string) result
(** An algorithm must fetch before it applies or stores, name each
    iterator once per role, and have a non-empty body. *)

val iterators : t -> (string * [ `Input | `Output ]) list
(** The iterator ports the generated entity needs. *)

val generate : t -> string
(** Complete VHDL design unit: entity with one request/ack port group
    per iterator, architecture with the loop FSM. Passes
    {!Vhdl_lint.check}. *)
